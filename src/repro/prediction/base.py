"""Throughput-predictor interface.

Section 3.3 of the paper: the bitrate controller consumes *predictions*
``{C_hat_t, t > t_k}`` from a throughput predictor plus exactly-known
buffer occupancy.  The paper deliberately treats predictors as pluggable —
"we assume that predictors are given to us and are characterized in terms
of their expected prediction errors" — and so does this package.

A predictor is fed one observation per completed chunk download (the
chunk's average throughput, Eq. 2) via :meth:`observe`, and asked for a
per-chunk forecast over the MPC look-ahead horizon via :meth:`predict`.

Oracle-style predictors used in sensitivity studies additionally implement
:class:`TraceAware`: the simulator binds them to the ground-truth trace and
informs them of the wall clock before each decision.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "OBSERVATION_FLOOR_KBPS",
    "ThroughputObservation",
    "ThroughputPredictor",
    "TraceAware",
]

#: Smallest throughput an observation can carry.  A chunk downloaded
#: through a connectivity blackout measures (arbitrarily close to) zero
#: throughput — a legitimate outcome, not bad input — but a literal zero
#: poisons every downstream consumer that divides by the measurement
#: (harmonic means, percentage errors, robust bounds).  Observations are
#: therefore clamped to this floor at the boundary: 0.001 kbps ≈ one bit
#: per second, far below any level a ladder could ever pick, so the clamp
#: never changes a decision — it only keeps the arithmetic finite.
OBSERVATION_FLOOR_KBPS = 1e-3


@dataclass(frozen=True)
class ThroughputObservation:
    """One completed chunk download, as seen by the predictor.

    Non-positive measured throughput (a fully stalled download) is
    clamped to :data:`OBSERVATION_FLOOR_KBPS` rather than rejected;
    negative, NaN, and infinite-duration inputs remain errors — those
    are caller bugs, not network conditions.

    ``idle_s`` and ``stall_s`` carry the on/off structure of streaming
    traffic (Kairos, arXiv 2503.14271): ``idle_s`` is off time *between*
    transfers adjacent to this chunk (request pacing, waiting for a live
    chunk to become available) and ``stall_s`` is off time *inside* the
    transfer window (connectivity blackouts, fault-detection dead time).
    Plain predictors ignore both; gap-corrected predictors reconstruct
    the :meth:`active_kbps` rate from them.
    """

    throughput_kbps: float
    duration_s: float = 0.0
    chunk_index: int = -1
    idle_s: float = 0.0
    stall_s: float = 0.0

    def __post_init__(self) -> None:
        if math.isnan(self.throughput_kbps) or self.throughput_kbps < 0:
            raise ValueError("observed throughput must be a number >= 0")
        if self.throughput_kbps < OBSERVATION_FLOOR_KBPS:
            object.__setattr__(self, "throughput_kbps", OBSERVATION_FLOOR_KBPS)
        if self.duration_s < 0:
            raise ValueError("duration must be >= 0")
        if math.isnan(self.idle_s) or self.idle_s < 0:
            raise ValueError("idle time must be a number >= 0")
        if math.isnan(self.stall_s) or self.stall_s < 0:
            raise ValueError("stall time must be a number >= 0")
        if self.stall_s > self.duration_s:
            raise ValueError(
                f"stall time {self.stall_s} exceeds download time {self.duration_s}"
            )

    @property
    def active_kbps(self) -> float:
        """Throughput over active-transfer time only.

        With a stall of ``s`` inside a download of ``d`` seconds, the
        wall-clock rate under-reports link capacity by ``(d - s) / d``;
        the active rate divides that factor back out.  When no stall was
        observed (or the transfer was entirely stalled) this is *exactly*
        the wall-clock value — same float, no arithmetic applied — which
        is what lets gap-corrected predictors degrade bit-for-bit to
        their plain counterparts on gap-free traffic.
        """
        if 0.0 < self.stall_s < self.duration_s:
            return self.throughput_kbps * (
                self.duration_s / (self.duration_s - self.stall_s)
            )
        return self.throughput_kbps


class ThroughputPredictor(ABC):
    """Base class for all predictors."""

    name = "base"

    @abstractmethod
    def reset(self) -> None:
        """Forget all history (called at the start of each session)."""

    @abstractmethod
    def observe(self, observation: ThroughputObservation) -> None:
        """Record a completed chunk's measured average throughput."""

    @abstractmethod
    def predict(self, horizon: int) -> List[float]:
        """Forecast per-chunk average throughput for the next ``horizon``
        chunks, in kbps.  Must return exactly ``horizon`` positive values,
        even with no history (a documented cold-start default)."""

    def observe_kbps(
        self,
        throughput_kbps: float,
        duration_s: float = 0.0,
        idle_s: float = 0.0,
        stall_s: float = 0.0,
    ) -> None:
        """Convenience wrapper building the observation record."""
        self.observe(
            ThroughputObservation(
                throughput_kbps, duration_s, idle_s=idle_s, stall_s=stall_s
            )
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class TraceAware:
    """Mixin for predictors that peek at the ground-truth trace.

    The simulator calls :meth:`bind_trace` once per session and
    :meth:`set_wall_time` before each prediction, enabling oracle and
    noisy-oracle predictors (Section 7.3's controlled-error study).
    """

    _trace = None
    _wall_time_s: float = 0.0
    _chunk_duration_s: Optional[float] = None

    def bind_trace(self, trace, chunk_duration_s: float) -> None:
        if chunk_duration_s <= 0:
            raise ValueError("chunk duration must be positive")
        self._trace = trace
        self._chunk_duration_s = chunk_duration_s

    def set_wall_time(self, t: float) -> None:
        if t < 0:
            raise ValueError("wall time must be >= 0")
        self._wall_time_s = t

    def _true_future(self, horizon: int) -> List[float]:
        """Ground-truth average throughput over the next ``horizon``
        chunk-length wall-clock windows starting now."""
        if self._trace is None or self._chunk_duration_s is None:
            raise RuntimeError(
                "trace-aware predictor used before bind_trace(); "
                "run it inside a simulation session"
            )
        L = self._chunk_duration_s
        t = self._wall_time_s
        return [
            self._trace.average_kbps_between(t + j * L, t + (j + 1) * L)
            for j in range(horizon)
        ]
