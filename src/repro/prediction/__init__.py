"""Throughput predictors and prediction-error tracking."""

from .base import (
    OBSERVATION_FLOOR_KBPS,
    ThroughputObservation,
    ThroughputPredictor,
    TraceAware,
)
from .harmonic import HarmonicMeanPredictor
from .simple import (
    EWMAPredictor,
    HoltLinearPredictor,
    LastSamplePredictor,
    SlidingMeanPredictor,
)
from .oracle import NoisyOraclePredictor, OraclePredictor
from .streaming import GapCorrectedEWMAPredictor, GapCorrectedHarmonicPredictor
from .registry import available_predictors, make_predictor
from .errors import PredictionErrorTracker, percentage_error

__all__ = [
    "OBSERVATION_FLOOR_KBPS",
    "ThroughputObservation",
    "ThroughputPredictor",
    "TraceAware",
    "HarmonicMeanPredictor",
    "EWMAPredictor",
    "HoltLinearPredictor",
    "LastSamplePredictor",
    "SlidingMeanPredictor",
    "GapCorrectedHarmonicPredictor",
    "GapCorrectedEWMAPredictor",
    "NoisyOraclePredictor",
    "OraclePredictor",
    "PredictionErrorTracker",
    "percentage_error",
    "make_predictor",
    "available_predictors",
]
