"""Throughput predictors and prediction-error tracking."""

from .base import (
    OBSERVATION_FLOOR_KBPS,
    ThroughputObservation,
    ThroughputPredictor,
    TraceAware,
)
from .harmonic import HarmonicMeanPredictor
from .simple import (
    EWMAPredictor,
    HoltLinearPredictor,
    LastSamplePredictor,
    SlidingMeanPredictor,
)
from .oracle import NoisyOraclePredictor, OraclePredictor
from .errors import PredictionErrorTracker, percentage_error

__all__ = [
    "OBSERVATION_FLOOR_KBPS",
    "ThroughputObservation",
    "ThroughputPredictor",
    "TraceAware",
    "HarmonicMeanPredictor",
    "EWMAPredictor",
    "HoltLinearPredictor",
    "LastSamplePredictor",
    "SlidingMeanPredictor",
    "NoisyOraclePredictor",
    "OraclePredictor",
    "PredictionErrorTracker",
    "percentage_error",
]
