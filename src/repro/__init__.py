"""repro — reproduction of Yin et al., "A Control-Theoretic Approach for
Dynamic Adaptive Video Streaming over HTTP" (SIGCOMM 2015).

The package implements the paper's control-theoretic streaming model, the
MPC / RobustMPC / FastMPC bitrate-adaptation algorithms, the baselines
they are evaluated against (RB, BB, FESTIVE, stock dash.js rules), a
trace-driven simulator and a byte-level emulation testbed, dataset
generators matching the paper's FCC/HSDPA/synthetic workloads, and the
experiment harness that regenerates every figure and table of Section 7.

Quickstart::

    from repro import quick_session

    result = quick_session(algorithm="robust-mpc", dataset="hsdpa")
    print(result.metrics().describe())
    print("QoE:", result.qoe().total)
"""

from __future__ import annotations

from .abr import (
    ABRAlgorithm,
    BufferBasedAlgorithm,
    DashJSRuleBased,
    FestiveAlgorithm,
    RateBasedAlgorithm,
    SessionConfig,
    create,
    paper_algorithms,
)
from .core import (
    FastMPCConfig,
    FastMPCController,
    MPCController,
    QoEWeights,
    RobustMPCController,
    compute_qoe,
    fluid_upper_bound,
    make_mpc_opt,
    normalized_qoe,
)
from .sim import SessionMetrics, SessionResult, StartupPolicy, simulate_session
from .traces import Trace, make_generator, standard_datasets
from .video import BitrateLadder, VideoManifest, envivio

__version__ = "1.0.0"

__all__ = [
    "ABRAlgorithm",
    "BufferBasedAlgorithm",
    "DashJSRuleBased",
    "FestiveAlgorithm",
    "RateBasedAlgorithm",
    "SessionConfig",
    "create",
    "paper_algorithms",
    "FastMPCConfig",
    "FastMPCController",
    "MPCController",
    "QoEWeights",
    "RobustMPCController",
    "compute_qoe",
    "fluid_upper_bound",
    "make_mpc_opt",
    "normalized_qoe",
    "SessionMetrics",
    "SessionResult",
    "StartupPolicy",
    "simulate_session",
    "Trace",
    "make_generator",
    "standard_datasets",
    "BitrateLadder",
    "VideoManifest",
    "envivio",
    "quick_session",
    "__version__",
]


def quick_session(
    algorithm: str = "robust-mpc",
    dataset: str = "fcc",
    trace_index: int = 0,
    seed: int = 0,
) -> SessionResult:
    """Run one algorithm on one generated trace with paper defaults."""
    manifest = envivio()
    generator = make_generator(dataset, seed=seed)
    trace = generator.generate(manifest.total_duration_s + 60.0, index=trace_index)
    return simulate_session(create(algorithm), trace, manifest)
