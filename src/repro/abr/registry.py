"""Name-based construction of adaptation algorithms.

The experiment harness, CLI, and benchmarks refer to algorithms by the
names the paper uses (Section 7.1.2); :func:`create` builds a fresh,
default-configured instance and :func:`paper_algorithms` returns the full
line-up of Figure 8.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.fastmpc import FastMPCController

try:  # the MDP extension needs NumPy; the rest of the zoo does not
    from ..core.mdp import MDPController
except ImportError:  # pragma: no cover - exercised by the no-numpy test
    MDPController = None  # type: ignore[assignment, misc]
from ..core.mpc import MPCController, make_mpc_opt
from ..core.robust import RobustMPCController
from ..prediction.streaming import GapCorrectedHarmonicPredictor
from .base import ABRAlgorithm
from .bola import BolaAlgorithm
from .buffer_based import BufferBasedAlgorithm, BufferBasedChunkMapAlgorithm
from .dashjs import DashJSRuleBased
from .dasip import DasIpAlgorithm
from .fairshare import FairShareCappedAlgorithm
from .festive import FestiveAlgorithm
from .fixed import ConstantLevelAlgorithm
from .rate_based import RateBasedAlgorithm

__all__ = ["create", "available", "paper_algorithms", "register", "unregister"]

_FACTORIES: Dict[str, Callable[[], ABRAlgorithm]] = {
    "rb": RateBasedAlgorithm,
    "bb": BufferBasedAlgorithm,
    "bba-1": BufferBasedChunkMapAlgorithm,
    "bola": BolaAlgorithm,
    "das-ip": DasIpAlgorithm,
    "festive": FestiveAlgorithm,
    "dashjs": DashJSRuleBased,
    "mpc": MPCController,
    "robust-mpc": RobustMPCController,
    "fastmpc": FastMPCController,
    "robust-fastmpc": lambda: FastMPCController(robust=True),
    # FastMPC fed by the idle-gap-corrected harmonic predictor
    # (docs/prediction.md): identical decisions on gap-free traffic,
    # capacity-recovering ones through blackouts and faulty links.
    "fastmpc-gap": lambda: FastMPCController(
        predictor=GapCorrectedHarmonicPredictor(), name="fastmpc-gap"
    ),
    "mpc-opt": make_mpc_opt,
    "lowest": lambda: ConstantLevelAlgorithm(0),
    "highest": lambda: ConstantLevelAlgorithm(-1),
    # The arena's fairness-aware arm: BOLA clamped to its measured
    # throughput share (docs/fairness.md).
    "fair-bola": lambda: FairShareCappedAlgorithm(BolaAlgorithm()),
}
if MDPController is not None:
    _FACTORIES["mdp"] = MDPController

#: Names shipped with the repo; :func:`register`/:func:`unregister` refuse
#: to touch them so user plugins cannot shadow or strand the paper zoo.
#: ``mdp`` is always protected, even when NumPy's absence keeps it out of
#: the live registry.
_BUILTIN_NAMES = frozenset(_FACTORIES) | {"mdp"}


def register(
    name: str, factory: Callable[[], ABRAlgorithm], override: bool = False
) -> None:
    """Add a custom algorithm to the registry (e.g. from user code).

    A duplicate name raises unless ``override=True`` replaces the earlier
    *custom* registration; built-in names can never be replaced.
    """
    if not name:
        raise ValueError("name must be non-empty")
    if name in _BUILTIN_NAMES:
        raise ValueError(f"algorithm {name!r} is built in and cannot be replaced")
    if name in _FACTORIES and not override:
        raise ValueError(
            f"algorithm {name!r} is already registered; "
            "pass override=True to replace it"
        )
    _FACTORIES[name] = factory


def unregister(name: str) -> None:
    """Remove a custom registration; built-in names are protected."""
    if name in _BUILTIN_NAMES:
        raise ValueError(f"algorithm {name!r} is built in and cannot be unregistered")
    if name not in _FACTORIES:
        raise ValueError(f"algorithm {name!r} is not registered")
    del _FACTORIES[name]


def available() -> List[str]:
    """All registered algorithm names, sorted."""
    return sorted(_FACTORIES)


def create(name: str) -> ABRAlgorithm:
    """A fresh instance of a registered algorithm."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        if name == "mdp" and MDPController is None:
            raise ValueError(
                "algorithm 'mdp' requires NumPy, which is not installed"
            ) from None
        raise ValueError(
            f"unknown algorithm {name!r}; available: {', '.join(available())}"
        ) from None
    return factory()


def paper_algorithms() -> Dict[str, ABRAlgorithm]:
    """The six algorithms of the paper's main comparison (Figure 8)."""
    names = ["rb", "bb", "fastmpc", "robust-mpc", "dashjs", "festive"]
    return {name: create(name) for name in names}
