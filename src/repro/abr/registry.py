"""Name-based construction of adaptation algorithms.

The experiment harness, CLI, and benchmarks refer to algorithms by the
names the paper uses (Section 7.1.2); :func:`create` builds a fresh,
default-configured instance and :func:`paper_algorithms` returns the full
line-up of Figure 8.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.fastmpc import FastMPCController

try:  # the MDP extension needs NumPy; the rest of the zoo does not
    from ..core.mdp import MDPController
except ImportError:  # pragma: no cover - exercised by the no-numpy test
    MDPController = None  # type: ignore[assignment, misc]
from ..core.mpc import MPCController, make_mpc_opt
from ..core.robust import RobustMPCController
from .base import ABRAlgorithm
from .bola import BolaAlgorithm
from .buffer_based import BufferBasedAlgorithm
from .dashjs import DashJSRuleBased
from .festive import FestiveAlgorithm
from .fixed import ConstantLevelAlgorithm
from .rate_based import RateBasedAlgorithm

__all__ = ["create", "available", "paper_algorithms", "register"]

_FACTORIES: Dict[str, Callable[[], ABRAlgorithm]] = {
    "rb": RateBasedAlgorithm,
    "bb": BufferBasedAlgorithm,
    "bola": BolaAlgorithm,
    "festive": FestiveAlgorithm,
    "dashjs": DashJSRuleBased,
    "mpc": MPCController,
    "robust-mpc": RobustMPCController,
    "fastmpc": FastMPCController,
    "robust-fastmpc": lambda: FastMPCController(robust=True),
    "mpc-opt": make_mpc_opt,
    "lowest": lambda: ConstantLevelAlgorithm(0),
    "highest": lambda: ConstantLevelAlgorithm(-1),
}
if MDPController is not None:
    _FACTORIES["mdp"] = MDPController


def register(name: str, factory: Callable[[], ABRAlgorithm]) -> None:
    """Add a custom algorithm to the registry (e.g. from user code)."""
    if not name:
        raise ValueError("name must be non-empty")
    if name in _FACTORIES:
        raise ValueError(f"algorithm {name!r} is already registered")
    _FACTORIES[name] = factory


def available() -> List[str]:
    """All registered algorithm names, sorted."""
    return sorted(_FACTORIES)


def create(name: str) -> ABRAlgorithm:
    """A fresh instance of a registered algorithm."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {', '.join(available())}"
        ) from None
    return factory()


def paper_algorithms() -> Dict[str, ABRAlgorithm]:
    """The six algorithms of the paper's main comparison (Figure 8)."""
    names = ["rb", "bb", "fastmpc", "robust-mpc", "dashjs", "festive"]
    return {name: create(name) for name in names}
