"""DAS-IP — an index policy for adaptive streaming (extension baseline).

Singh & Kumar (arXiv 1612.05864, listed in PAPERS.md) frame bitrate
adaptation as a restless-bandit scheduling problem and derive an *index
policy*: each quality level gets a scalar index combining its utility
with the rebuffer risk it would incur, and the player simply picks the
level with the largest index.  The attraction is the same as FastMPC's
table — the online step is a constant-time argmax — while still blending
buffer state, throughput prediction, and the previous decision (the full
Section 3.3 input set, unlike BB's buffer-only map).

The deterministic index implemented here, for level ``m`` at chunk ``k``
with buffer ``B``, prediction ``C_hat`` and previous level ``prev``:

    I_m = u_m - beta * max(0, s_m / C_hat - B) - gamma * |m - prev|

where ``u_m = ln(r_m / r_min)`` is the log-rate utility and ``s_m`` the
actual size of chunk ``k`` at level ``m`` (VBR-aware).  The middle term
is the predicted *rebuffer deficit*: the seconds by which the download
would outrun the buffer.  ``beta`` prices a second of predicted stall in
utility units; ``gamma`` is a mild switching tax.  The argmax is the
exact first-wins scan shared with BOLA (strict ``>``, no epsilon), so
the fleet batch twin is bit-identical by construction.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

from ..prediction.base import ThroughputPredictor
from ..prediction.harmonic import HarmonicMeanPredictor
from .base import ABRAlgorithm, PlayerObservation

__all__ = ["DasIpAlgorithm"]


class DasIpAlgorithm(ABRAlgorithm):
    """The DAS-IP index policy over the manifest's ladder.

    Parameters
    ----------
    beta:
        Utility cost per second of predicted rebuffer deficit.
    gamma:
        Utility cost per ladder step of switching.
    predictor:
        Defaults to the paper-standard harmonic mean of the last 5 chunks.
    """

    name = "das-ip"

    def __init__(
        self,
        beta: float = 1.0,
        gamma: float = 0.05,
        predictor: Optional[ThroughputPredictor] = None,
    ) -> None:
        if beta < 0 or gamma < 0:
            raise ValueError("beta and gamma must be >= 0")
        self.beta = beta
        self.gamma = gamma
        self.predictor = (
            predictor if predictor is not None else HarmonicMeanPredictor()
        )

    def predictors(self) -> Iterable[ThroughputPredictor]:
        return (self.predictor,)

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        r_min = manifest.ladder.min_kbps
        self._utilities = [math.log(r / r_min) for r in manifest.ladder]

    def indices(self, observation: PlayerObservation) -> List[float]:
        """The per-level index values at a decision instant."""
        self._require_prepared()
        c_hat = self.predictor.predict(1)[0]
        buffer_s = observation.buffer_level_s
        prev = observation.prev_level_index
        if prev is None:
            prev = 0
        out = []
        for level, utility in enumerate(self._utilities):
            size = self.manifest.chunk_size_kilobits(
                observation.chunk_index, level
            )
            deficit = max(0.0, size / c_hat - buffer_s)
            switch = abs(level - prev)
            out.append(utility - self.beta * deficit - self.gamma * switch)
        return out

    def select_bitrate(self, observation: PlayerObservation) -> int:
        indices = self.indices(observation)
        best_level = 0
        best_score = -math.inf
        # Exact first-wins argmax, in lockstep with the fleet twin.
        for level, score in enumerate(indices):
            if score > best_score:
                best_score = score
                best_level = level
        return best_level
