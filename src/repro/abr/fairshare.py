"""A fairness-aware wrapper: throughput-share capping over any ABR.

The multiplayer paper (Yin et al., arXiv:1608.08469) traces much of
shared-bottleneck unfairness to *over-subscription*: a player whose
buffer-filling logic requests above its fair share keeps stealing
capacity during competitors' OFF periods, and the feedback loop locks
the imbalance in.  On a max-min fair link a player's measured HTTP
throughput *is* (an estimate of) its current fair share, so the
countermeasure is mechanical: never request a bitrate above
``cap_fraction`` of the measured share, whatever the wrapped controller
asks for.

:class:`FairShareCappedAlgorithm` composes with any registry algorithm
— decisions, startup policy, and predictor feedback all delegate to the
wrapped controller; only the final level is clamped.  ``fair-bola`` is
registered as the arena's stock fairness-aware arm.
"""

from __future__ import annotations

from typing import Iterable

from ..prediction import HarmonicMeanPredictor
from ..prediction.base import ThroughputPredictor
from .base import ABRAlgorithm, DownloadResult, PlayerObservation

__all__ = ["FairShareCappedAlgorithm"]


class FairShareCappedAlgorithm(ABRAlgorithm):
    """Clamp a wrapped controller's choice to the measured fair share.

    Parameters
    ----------
    inner:
        The controller actually making decisions.
    cap_fraction:
        Fraction of the measured throughput share the requested bitrate
        may not exceed (default 0.95 — just under the share, so the
        player never grows its claim during others' OFF periods).
    window:
        Chunks in the share monitor's harmonic mean (the paper's 5).
    """

    def __init__(
        self,
        inner: ABRAlgorithm,
        cap_fraction: float = 0.95,
        window: int = 5,
    ) -> None:
        if cap_fraction <= 0:
            raise ValueError("cap fraction must be positive")
        self.inner = inner
        self.cap_fraction = cap_fraction
        self._monitor = HarmonicMeanPredictor(window=window)
        self._observed = 0
        self.name = f"fair-{inner.name}"

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        self.inner.tracer = self.tracer
        self.inner.prepare(manifest, config)
        self._monitor.reset()
        self._observed = 0

    def predictors(self) -> Iterable[ThroughputPredictor]:
        # The inner controller's predictors (so trace-binding and resets
        # reach them) plus the share monitor.
        return tuple(self.inner.predictors()) + (self._monitor,)

    def select_bitrate(self, observation: PlayerObservation) -> int:
        level = self.inner.select_bitrate(observation)
        if self._observed == 0:
            return level  # no share measurement yet — nothing to cap by
        share_kbps = self.cap_fraction * self._monitor.current_estimate()
        cap_level = self.manifest.ladder.highest_at_most(share_kbps)
        return min(level, cap_level)

    def on_download_complete(self, result: DownloadResult) -> None:
        self._observed += 1
        self._monitor.observe_kbps(result.throughput_kbps, result.download_time_s)
        self.inner.on_download_complete(result)

    def select_startup_wait(self, observation: PlayerObservation) -> float:
        return self.inner.select_startup_wait(observation)
