"""Bitrate-adaptation algorithms: shared interface, baselines, registry."""

from .base import ABRAlgorithm, DownloadResult, PlayerObservation, SessionConfig
from .rate_based import RateBasedAlgorithm
from .bola import BolaAlgorithm
from .buffer_based import BufferBasedAlgorithm, BufferBasedChunkMapAlgorithm
from .dasip import DasIpAlgorithm
from .festive import FestiveAlgorithm
from .dashjs import DashJSRuleBased
from .fixed import ConstantLevelAlgorithm, FixedPlanAlgorithm
from .registry import available, create, paper_algorithms, register, unregister

__all__ = [
    "ABRAlgorithm",
    "DownloadResult",
    "PlayerObservation",
    "SessionConfig",
    "RateBasedAlgorithm",
    "BolaAlgorithm",
    "BufferBasedAlgorithm",
    "BufferBasedChunkMapAlgorithm",
    "DasIpAlgorithm",
    "FestiveAlgorithm",
    "DashJSRuleBased",
    "ConstantLevelAlgorithm",
    "FixedPlanAlgorithm",
    "available",
    "create",
    "paper_algorithms",
    "register",
    "unregister",
]
