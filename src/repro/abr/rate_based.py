"""RB — the canonical rate-based algorithm.

Section 7.1.2, item 1: *"The bitrate is picked as the maximum available
bitrate which is less than p = 1 times throughput prediction using
harmonic mean of past 5 chunks."*  Pure Eq. (13): throughput prediction
in, bitrate out, buffer ignored.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..prediction.base import ThroughputPredictor
from ..prediction.harmonic import HarmonicMeanPredictor
from .base import ABRAlgorithm, PlayerObservation

__all__ = ["RateBasedAlgorithm"]


class RateBasedAlgorithm(ABRAlgorithm):
    """Max bitrate under ``p x`` predicted throughput.

    Parameters
    ----------
    predictor:
        Defaults to the harmonic mean of the last 5 chunks.
    safety_factor:
        The paper's ``p`` (default 1.0); values below 1 leave headroom.
    """

    name = "rb"

    def __init__(
        self,
        predictor: Optional[ThroughputPredictor] = None,
        safety_factor: float = 1.0,
    ) -> None:
        if safety_factor <= 0:
            raise ValueError("safety factor must be positive")
        self.predictor = predictor if predictor is not None else HarmonicMeanPredictor()
        self.safety_factor = safety_factor

    def predictors(self) -> Iterable[ThroughputPredictor]:
        return (self.predictor,)

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        budget = self.safety_factor * self.predictor.predict(1)[0]
        return self.manifest.ladder.highest_at_most(budget)
