"""BOLA — Lyapunov-based buffer-level adaptation (extension baseline).

BOLA (Spiteri, Urgaonkar, Sitaraman, INFOCOM 2016) appeared a year after
this paper and became the default buffer-based logic of the very dash.js
player the paper prototyped in — which makes it the natural "what came
next" comparator for the buffer-based family.  Like Huang et al.'s BB it
decides from buffer occupancy alone (Eq. 14 of the paper); unlike BB's
hand-drawn rate map, BOLA derives its map from Lyapunov optimisation of
time-average utility minus rebuffering.

BOLA-BASIC, as implemented here: for buffer level ``Q`` (seconds) and
chunk duration ``p``, pick the level ``m`` maximising

    score(m) = ( V * (v_m + gamma_p) - Q / p ) / s_m

where ``v_m = ln(s_m / s_min)`` is the utility of level ``m``'s chunk
size ``s_m`` and the control parameter ``V`` is sized so the buffer
target sits just under the capacity:

    V = (Bmax / p - 1) / (v_max + gamma_p).

Larger ``gamma_p`` values the buffer (rebuffer safety) more against
utility.
"""

from __future__ import annotations

import math
from typing import List

from .base import ABRAlgorithm, PlayerObservation

__all__ = ["BolaAlgorithm"]


class BolaAlgorithm(ABRAlgorithm):
    """BOLA-BASIC over the manifest's ladder.

    Parameters
    ----------
    gamma_p:
        The rebuffer-aversion knob ``gamma * p`` (the BOLA paper's
        experiments use 5).
    """

    name = "bola"

    def __init__(self, gamma_p: float = 5.0) -> None:
        if gamma_p <= 0:
            raise ValueError("gamma_p must be positive")
        self.gamma_p = gamma_p

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        p = manifest.chunk_duration_s
        # Nominal CBR sizes define the utilities; VBR chunks reuse the
        # per-level utilities of their nominal rates (standard practice).
        sizes = [p * r for r in manifest.ladder]
        s_min = sizes[0]
        self._utilities = [math.log(s / s_min) for s in sizes]
        v_max = self._utilities[-1]
        buffer_chunks = config.buffer_capacity_s / p
        if buffer_chunks <= 1:
            raise ValueError(
                "BOLA needs a buffer of more than one chunk duration"
            )
        self.control_v = (buffer_chunks - 1) / (v_max + self.gamma_p)

    def scores(self, buffer_level_s: float) -> List[float]:
        """The BOLA objective per level at a given buffer occupancy."""
        self._require_prepared()
        p = self.manifest.chunk_duration_s
        q_chunks = buffer_level_s / p
        out = []
        for level, utility in enumerate(self._utilities):
            size = self.manifest.chunk_duration_s * self.manifest.ladder[level]
            out.append(
                (self.control_v * (utility + self.gamma_p) - q_chunks) / size
            )
        return out

    def select_bitrate(self, observation: PlayerObservation) -> int:
        scores = self.scores(observation.buffer_level_s)
        best_level = 0
        best_score = -math.inf
        # Exact first-wins argmax: strict ``>`` keeps the lowest level on
        # ties.  An epsilon here would be scale-dependent — multi-Mbps
        # chunk sizes compress the scores to where genuine differences
        # fall under any fixed threshold and the argmax picks the wrong
        # level (see tests/abr/test_bola.py::TestArgmaxExactness).
        for level, score in enumerate(scores):
            if score > best_score:
                best_score = score
                best_level = level
        return best_level
