"""BB — the buffer-based algorithm of Huang et al. (SIGCOMM 2014).

Section 7.1.2, item 2: *"We employ the function suggested by Huang et al,
where bitrate R_k is chosen to be the maximum available bitrate which is
less than r_k = f(B_k) with reservoir r = 5s and cushion c = 10s."*

The rate map ``f`` is the BBA-0 piecewise-linear chunk map: below the
reservoir the player pins the minimum rate to refill; across the cushion
the target rate rises linearly from ``Rmin`` to ``Rmax``; above
``reservoir + cushion`` the maximum rate is safe.  Throughput information
is deliberately discarded (Eq. 14) — that is the whole point of the BB
design philosophy the paper examines.
"""

from __future__ import annotations

from .base import ABRAlgorithm, PlayerObservation

__all__ = ["BufferBasedAlgorithm", "BufferBasedChunkMapAlgorithm"]


class BufferBasedAlgorithm(ABRAlgorithm):
    """Huang et al.'s reservoir/cushion linear rate map.

    Parameters
    ----------
    reservoir_s:
        Buffer level below which the minimum rate is forced (paper: 5 s).
    cushion_s:
        Width of the linear ramp from ``Rmin`` to ``Rmax`` (paper: 10 s).
    """

    name = "bb"

    def __init__(self, reservoir_s: float = 5.0, cushion_s: float = 10.0) -> None:
        if reservoir_s < 0:
            raise ValueError("reservoir must be >= 0")
        if cushion_s <= 0:
            raise ValueError("cushion must be positive")
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def rate_map_kbps(self, buffer_level_s: float) -> float:
        """``f(B)`` — the target rate for a given buffer occupancy."""
        self._require_prepared()
        ladder = self.manifest.ladder
        if buffer_level_s <= self.reservoir_s:
            return ladder.min_kbps
        if buffer_level_s >= self.reservoir_s + self.cushion_s:
            return ladder.max_kbps
        frac = (buffer_level_s - self.reservoir_s) / self.cushion_s
        return ladder.min_kbps + frac * (ladder.max_kbps - ladder.min_kbps)

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        return self.manifest.ladder.highest_at_most(
            self.rate_map_kbps(observation.buffer_level_s)
        )


class BufferBasedChunkMapAlgorithm(ABRAlgorithm):
    """BBA-1 — Huang et al.'s chunk-size map refinement of BBA-0.

    Where BBA-0 maps the buffer to a nominal *rate*, BBA-1 maps it to an
    actual *chunk size*: the reservoir/cushion ramp runs from the current
    chunk's smallest to its largest encoding, and the chosen level is the
    highest one whose chunk fits under the mapped size.  On a CBR
    manifest the two coincide; on VBR content BBA-1 reacts to the real
    per-chunk byte counts instead of the ladder's nominal rates.

    Parameters
    ----------
    reservoir_s / cushion_s:
        Same knobs (and defaults) as BBA-0.
    """

    name = "bba-1"

    def __init__(self, reservoir_s: float = 5.0, cushion_s: float = 10.0) -> None:
        if reservoir_s < 0:
            raise ValueError("reservoir must be >= 0")
        if cushion_s <= 0:
            raise ValueError("cushion must be positive")
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def chunk_size_map_kilobits(
        self, chunk_index: int, buffer_level_s: float
    ) -> float:
        """``f(B)`` in chunk-size space for chunk ``chunk_index``."""
        self._require_prepared()
        manifest = self.manifest
        s_min = manifest.chunk_size_kilobits(chunk_index, 0)
        s_max = manifest.chunk_size_kilobits(
            chunk_index, len(manifest.ladder) - 1
        )
        if buffer_level_s <= self.reservoir_s:
            return s_min
        if buffer_level_s >= self.reservoir_s + self.cushion_s:
            return s_max
        frac = (buffer_level_s - self.reservoir_s) / self.cushion_s
        return s_min + frac * (s_max - s_min)

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        target = self.chunk_size_map_kilobits(
            observation.chunk_index, observation.buffer_level_s
        )
        # Largest level whose chunk fits under the mapped size (sizes are
        # strictly increasing per chunk); comparisons only, so the fleet
        # batch twin's searchsorted agrees on every input.
        best = 0
        for level in range(1, len(self.manifest.ladder)):
            if (
                self.manifest.chunk_size_kilobits(observation.chunk_index, level)
                <= target
            ):
                best = level
        return best
