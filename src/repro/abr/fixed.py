"""Trivial reference policies: fixed level and fixed plan.

These are the two "extreme solutions" Section 2 uses to motivate the QoE
trade-off (always-lowest avoids stalls but wastes quality; always-highest
maximises nominal quality but stalls), and they double as deterministic
fixtures for tests and for cross-checking the simulator against
:func:`repro.core.offline.simulate_fixed_plan`.
"""

from __future__ import annotations

from typing import Sequence

from .base import ABRAlgorithm, PlayerObservation

__all__ = ["ConstantLevelAlgorithm", "FixedPlanAlgorithm"]


class ConstantLevelAlgorithm(ABRAlgorithm):
    """Always pick the same ladder level (negative = from the top)."""

    def __init__(self, level_index: int = 0) -> None:
        self._requested_level = level_index
        self.name = f"constant[{level_index}]"

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        n = len(manifest.ladder)
        level = self._requested_level
        if level < 0:
            level += n
        if not 0 <= level < n:
            raise ValueError(
                f"level {self._requested_level} invalid for a {n}-level ladder"
            )
        self._level = level

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        return self._level


class FixedPlanAlgorithm(ABRAlgorithm):
    """Replay a predetermined per-chunk plan (testing / offline replays)."""

    name = "fixed-plan"

    def __init__(self, plan: Sequence[int]) -> None:
        if not plan:
            raise ValueError("plan must not be empty")
        self.plan = [int(x) for x in plan]

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        if len(self.plan) != manifest.num_chunks:
            raise ValueError(
                f"plan covers {len(self.plan)} chunks; video has {manifest.num_chunks}"
            )
        n = len(manifest.ladder)
        if any(not 0 <= level < n for level in self.plan):
            raise ValueError("plan contains invalid level indices")

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        return self.plan[observation.chunk_index]
