"""The stock dash.js (v1.2.0) rule-based adaptation logic.

Section 6 describes the original dash.js decision logic the paper
compares against (item 5 of Section 7.1.2):

* ``DownloadRatioRule`` — selects bitrate from the "download ratio": play
  time of the last chunk divided by its download time.  A ratio below 1
  means the chunk arrived slower than real time, so the rule scales the
  current rate down by the ratio; a ratio comfortably above the step to
  the next level allows an immediate up-switch.  This immediacy is why
  the paper observes the stock player "incurs many unnecessary switches".

* ``InsufficientBufferRule`` — drops to the lowest bitrate whenever the
  buffer has recently been critically low, which keeps rebuffering rare.

Rules are combined by priority: the *more conservative* (lower) proposal
wins, matching dash.js's conflict resolution.  Per the paper's evaluation
protocol, the logic runs with the two testbed modifications applied
(decisions at chunk boundaries, strictly sequential downloads) — that is
exactly how both of our backends drive every algorithm.
"""

from __future__ import annotations

from typing import Optional

from .base import ABRAlgorithm, DownloadResult, PlayerObservation

__all__ = ["DashJSRuleBased"]


class DashJSRuleBased(ABRAlgorithm):
    """Port of the dash.js v1.2 rule set.

    Parameters
    ----------
    low_buffer_s:
        Buffer level considered "insufficient"; a visit below it forces
        the lowest bitrate (dash.js's default validation threshold ~4 s).
    low_buffer_memory_chunks:
        For how many subsequent chunks a low-buffer event keeps the
        insufficient-buffer rule active.
    up_switch_margin:
        Required headroom factor for an up-switch: the measured download
        ratio must exceed ``margin * (next_rate / current_rate)``.
    """

    name = "dashjs"

    def __init__(
        self,
        low_buffer_s: float = 4.0,
        low_buffer_memory_chunks: int = 2,
        up_switch_margin: float = 1.0,
    ) -> None:
        if low_buffer_s < 0:
            raise ValueError("low-buffer threshold must be >= 0")
        if low_buffer_memory_chunks < 0:
            raise ValueError("low-buffer memory must be >= 0")
        if up_switch_margin <= 0:
            raise ValueError("up-switch margin must be positive")
        self.low_buffer_s = low_buffer_s
        self.low_buffer_memory_chunks = low_buffer_memory_chunks
        self.up_switch_margin = up_switch_margin
        self._last_download_ratio: Optional[float] = None
        self._low_buffer_cooldown = 0

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        self._last_download_ratio = None
        self._low_buffer_cooldown = 0

    # ------------------------------------------------------------------
    # The two rules
    # ------------------------------------------------------------------

    def _download_ratio_rule(self, current: int) -> int:
        """Proposal from the last chunk's download ratio."""
        ladder = self.manifest.ladder
        ratio = self._last_download_ratio
        if ratio is None:
            return 0  # nothing measured yet: start at the bottom
        current_rate = ladder[current]
        if ratio < 1.0:
            # Arrived slower than real time: scale down proportionally.
            return ladder.highest_at_most(current_rate * ratio)
        if current + 1 < len(ladder):
            step = ladder[current + 1] / current_rate
            if ratio >= self.up_switch_margin * step:
                return current + 1
        return current

    def _insufficient_buffer_rule(self, observation: PlayerObservation) -> int:
        """Proposal from recent buffer health; len(ladder)-1 = no opinion."""
        if (
            observation.playback_started
            and observation.buffer_level_s < self.low_buffer_s
        ):
            self._low_buffer_cooldown = self.low_buffer_memory_chunks
            return 0
        if self._low_buffer_cooldown > 0:
            return 0
        return len(self.manifest.ladder) - 1

    # ------------------------------------------------------------------

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        current = (
            observation.prev_level_index
            if observation.prev_level_index is not None
            else 0
        )
        ratio_proposal = self._download_ratio_rule(current)
        buffer_proposal = self._insufficient_buffer_rule(observation)
        return min(ratio_proposal, buffer_proposal)

    def on_download_complete(self, result: DownloadResult) -> None:
        if result.download_time_s > 0:
            self._last_download_ratio = (
                self.manifest.chunk_duration_s / result.download_time_s
            )
        if self._low_buffer_cooldown > 0:
            self._low_buffer_cooldown -= 1
        super().on_download_complete(result)
