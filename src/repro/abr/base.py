"""The ABR algorithm interface shared by the simulator and the emulator.

Section 3.3 frames every adaptation algorithm as a function

.. math::  R_k = f(B_k, \\{\\hat C_t, t > t_k\\}, \\{R_i, i < k\\})

— bitrate from buffer occupancy, throughput predictions, and past
decisions.  :class:`ABRAlgorithm` is that ``f`` plus the session-lifecycle
hooks a real player needs: per-session preparation, a feedback call after
every completed chunk, and an optional startup-wait decision.

Both execution backends (:mod:`repro.sim` and :mod:`repro.emulation`)
drive algorithms exclusively through this interface, which is what makes
the paper's algorithm comparison apples-to-apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..qoe import QoEWeights
from ..prediction.base import ThroughputPredictor
from ..video.manifest import VideoManifest
from ..video.quality import IdentityQuality, QualityFunction

__all__ = [
    "SessionConfig",
    "PlayerObservation",
    "DownloadResult",
    "ABRAlgorithm",
]


@dataclass(frozen=True)
class SessionConfig:
    """Per-session environment parameters shared with the algorithm.

    ``request_target_buffer_s`` generalises the chunk-scheduling wait
    ``Delta t_k`` of Eq. (4): when set, the player paces its requests so
    the buffer settles at the target rather than filling all the way to
    ``Bmax`` (how production players schedule; the paper's model is the
    default ``None`` = pace only at capacity).
    """

    buffer_capacity_s: float = 30.0  # Bmax (paper default, Section 7.1.1)
    weights: QoEWeights = field(default_factory=QoEWeights.balanced)
    quality: QualityFunction = field(default_factory=IdentityQuality)
    request_target_buffer_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.buffer_capacity_s <= 0:
            raise ValueError("buffer capacity must be positive")
        if (
            self.request_target_buffer_s is not None
            and self.request_target_buffer_s <= 0
        ):
            raise ValueError("request target buffer must be positive")

    @property
    def pacing_threshold_s(self) -> float:
        """The buffer level above which the player delays its next GET."""
        if self.request_target_buffer_s is None:
            return self.buffer_capacity_s
        return min(self.request_target_buffer_s, self.buffer_capacity_s)


@dataclass(frozen=True)
class PlayerObservation:
    """Player state at a decision instant (start of chunk ``k``).

    ``available_chunks`` is the number of chunks published so far in a
    live session (chunks ``0 .. available_chunks - 1`` exist); ``None``
    — the default, and always the case for on-demand video — means the
    whole manifest is available.  Lookahead controllers clip their
    planning horizon to it.
    """

    chunk_index: int
    buffer_level_s: float  # B_k, known exactly
    prev_level_index: Optional[int]  # None before the first chunk
    wall_time_s: float
    playback_started: bool
    available_chunks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.chunk_index < 0:
            raise ValueError("chunk index must be >= 0")
        if self.buffer_level_s < 0:
            raise ValueError("buffer level must be >= 0")
        if self.wall_time_s < 0:
            raise ValueError("wall time must be >= 0")
        if (
            self.available_chunks is not None
            and self.available_chunks <= self.chunk_index
        ):
            raise ValueError(
                "a decision requires the chunk being decided to be available"
            )


@dataclass(frozen=True)
class DownloadResult:
    """Feedback after chunk ``k`` finished downloading.

    ``stalled_s`` is dead time *inside* the download window — seconds
    spent in zero-bandwidth trace segments or burnt detecting link
    failures — and ``idle_before_s`` is off time between the previous
    transfer's end and this one's start (pacing waits, live-availability
    waits).  Both default to 0 for backends that predate the
    streaming-aware prediction layer; gap-corrected predictors use them
    to reconstruct active-transfer rates.
    """

    chunk_index: int
    level_index: int
    bitrate_kbps: float
    size_kilobits: float
    download_time_s: float
    throughput_kbps: float  # C_k of Eq. 2 — size / download time
    rebuffer_s: float
    buffer_after_s: float
    wall_time_end_s: float
    waited_s: float = 0.0  # Delta t_k, non-zero only at a full buffer
    buffer_before_s: float = 0.0  # B_k at the decision instant
    stalled_s: float = 0.0  # dead time inside the download window
    idle_before_s: float = 0.0  # off time since the previous transfer

    def __post_init__(self) -> None:
        if self.download_time_s < 0 or self.rebuffer_s < 0 or self.waited_s < 0:
            raise ValueError("times must be >= 0")
        if self.throughput_kbps <= 0:
            raise ValueError("measured throughput must be positive")
        if self.stalled_s < 0 or self.idle_before_s < 0:
            raise ValueError("stall/idle times must be >= 0")
        if self.stalled_s > self.download_time_s:
            raise ValueError("stall time cannot exceed the download time")


class ABRAlgorithm(ABC):
    """Base class for all bitrate-adaptation algorithms."""

    name = "base"

    #: Optional :class:`repro.obs.Tracer` for profiling hooks (solver
    #: wall-time, table-lookup depth).  Sessions attach theirs before
    #: driving the algorithm; ``None`` keeps every hook a no-op.
    tracer = None

    def prepare(self, manifest: VideoManifest, config: SessionConfig) -> None:
        """Bind to a video/session; called once before each session.

        Subclasses overriding this must call ``super().prepare(...)``.
        """
        self.manifest = manifest
        self.config = config
        for predictor in self.predictors():
            predictor.reset()

    @abstractmethod
    def select_bitrate(self, observation: PlayerObservation) -> int:
        """Choose the ladder level index for the next chunk."""

    def on_download_complete(self, result: DownloadResult) -> None:
        """Feedback hook; default updates every exposed predictor."""
        for predictor in self.predictors():
            predictor.observe_kbps(
                result.throughput_kbps,
                result.download_time_s,
                idle_s=result.idle_before_s,
                stall_s=result.stalled_s,
            )

    def select_startup_wait(self, observation: PlayerObservation) -> float:
        """Extra seconds to wait after the first chunk before playback.

        Only MPC's startup variant (``f_stmpc``) optimises this; the default
        is to start playback immediately once the first chunk arrives,
        which is how the baseline algorithms behave.
        """
        return 0.0

    def predictors(self) -> Iterable[ThroughputPredictor]:
        """Predictors this algorithm owns (for reset/observe/trace-binding).

        Algorithms without predictors (pure buffer-based) return nothing.
        """
        return ()

    # ------------------------------------------------------------------

    def _require_prepared(self) -> None:
        if not hasattr(self, "manifest"):
            raise RuntimeError(
                f"{type(self).__name__} used before prepare(); run it "
                "through a simulation or emulation session"
            )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
