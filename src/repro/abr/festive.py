"""FESTIVE (Jiang et al., CoNEXT 2012) — stability-aware rate selection.

Section 7.1.2, item 6 configures FESTIVE as: no wait time between chunk
downloads, no randomized scheduling (irrelevant in the single-player
setting), an *efficiency score* driven by ``p = 1`` times the harmonic
mean of the past 5 chunks, a *stability score* as a function of bitrate
switches in the past 5 chunks, and the bitrate chosen to minimise
``stability + alpha * efficiency`` with ``alpha = 12``.

Following the FESTIVE design, this implementation also keeps the
*gradual switching* discipline: candidates are only the current level and
its immediate neighbours, and an up-switch is considered only after the
player has stayed at the current level for a number of chunks
proportional to the level ("patience grows with rate").  This deliberate
sluggishness is why the paper observes FESTIVE "switches up bitrate
slowly even when the available throughput is increasing" — a fairness
feature, not a bug (footnote 8).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from ..prediction.base import ThroughputPredictor
from ..prediction.harmonic import HarmonicMeanPredictor
from .base import ABRAlgorithm, DownloadResult, PlayerObservation

__all__ = ["FestiveAlgorithm"]


class FestiveAlgorithm(ABRAlgorithm):
    """Efficiency/stability trade-off with gradual switching.

    Parameters
    ----------
    alpha:
        Weight of the efficiency score (paper: 12).
    predictor:
        Bandwidth estimator (paper: harmonic mean of last 5 chunks).
    switch_window:
        How many recent chunks the stability score counts switches over.
    """

    name = "festive"

    def __init__(
        self,
        alpha: float = 12.0,
        predictor: Optional[ThroughputPredictor] = None,
        switch_window: int = 5,
        safety_factor: float = 1.0,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if switch_window < 1:
            raise ValueError("switch window must be >= 1")
        if safety_factor <= 0:
            raise ValueError("safety factor must be positive")
        self.alpha = alpha
        self.predictor = predictor if predictor is not None else HarmonicMeanPredictor()
        self.switch_window = switch_window
        self.safety_factor = safety_factor
        self._recent_levels: Deque[int] = deque(maxlen=switch_window + 1)
        self._chunks_at_current = 0

    def prepare(self, manifest, config) -> None:
        super().prepare(manifest, config)
        self._recent_levels.clear()
        self._chunks_at_current = 0

    def predictors(self) -> Iterable[ThroughputPredictor]:
        return (self.predictor,)

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------

    def efficiency_score(self, level: int, predicted_kbps: float) -> float:
        """Distance of the candidate rate from the bandwidth-fit target.

        FESTIVE's definition: ``|rate / min(p*w, rate_ref) - 1|`` where
        ``rate_ref`` is the rate the plain rate-based policy would pick
        (highest ladder rate under ``p*w``).  Candidates below the target
        score positive, creating the upward pressure that efficiency is
        meant to encode; candidates above ``p*w`` are penalised too.
        """
        ladder = self.manifest.ladder
        rate = ladder[level]
        budget = self.safety_factor * predicted_kbps
        rate_ref = ladder[ladder.highest_at_most(budget)]
        reference = min(budget, rate_ref)
        if reference <= 0:
            return float("inf")
        return abs(rate / reference - 1.0)

    def stability_score(self, level: int) -> float:
        """``2^k`` with ``k`` switches over the recent window, counting the
        candidate switch itself."""
        switches = 0
        history = list(self._recent_levels)
        for a, b in zip(history, history[1:]):
            if a != b:
                switches += 1
        if history and level != history[-1]:
            switches += 1
        return float(2**switches)

    # ------------------------------------------------------------------

    def _candidate_levels(self, current: int) -> List[int]:
        """Gradual switching: current level and eligible neighbours."""
        candidates = [current]
        if current > 0:
            candidates.append(current - 1)
        # Up-switch patience: a player at level i waits i+1 chunks.
        if (
            current + 1 < len(self.manifest.ladder)
            and self._chunks_at_current >= current + 1
        ):
            candidates.append(current + 1)
        return candidates

    def select_bitrate(self, observation: PlayerObservation) -> int:
        self._require_prepared()
        predicted = self.predictor.predict(1)[0]
        if observation.prev_level_index is None:
            # Cold start: the highest rate under the (conservative) estimate.
            return self.manifest.ladder.highest_at_most(
                self.safety_factor * predicted
            )
        current = observation.prev_level_index
        best_level = current
        best_score = float("inf")
        for level in sorted(self._candidate_levels(current)):
            score = self.stability_score(level) + self.alpha * self.efficiency_score(
                level, predicted
            )
            if score < best_score - 1e-12:
                best_score = score
                best_level = level
        return best_level

    def on_download_complete(self, result: DownloadResult) -> None:
        if self._recent_levels and self._recent_levels[-1] == result.level_index:
            self._chunks_at_current += 1
        else:
            self._chunks_at_current = 1
        self._recent_levels.append(result.level_index)
        super().on_download_complete(result)
