"""Scalable shared-bottleneck multiplayer emulation (the arena).

Thousand-player populations on one emulated bottleneck: seeded arrival
schedules (staggered / Poisson / flash-crowd), chunk-boundary
departures, on/off cross traffic, per-player controller mixes drawn
from the registry zoo, and time-windowed efficiency / fairness /
instability metrics.  See ``docs/fairness.md``.
"""

from .metrics import (
    ArenaTotals,
    CohortRollup,
    PlayerOutcome,
    WindowMetrics,
    compute_cohorts,
    compute_totals,
    compute_windows,
)
from .runner import ArenaConfig, ArenaResult, run_arena
from .schedule import (
    ARRIVAL_MODES,
    CrossTrafficSpec,
    PlayerSchedule,
    PlayerSpec,
    ScheduleConfig,
    build_schedule,
)

__all__ = [
    "ARRIVAL_MODES",
    "ArenaConfig",
    "ArenaResult",
    "ArenaTotals",
    "CohortRollup",
    "CrossTrafficSpec",
    "PlayerOutcome",
    "PlayerSchedule",
    "PlayerSpec",
    "ScheduleConfig",
    "WindowMetrics",
    "build_schedule",
    "compute_cohorts",
    "compute_totals",
    "compute_windows",
    "run_arena",
]
