"""Seeded population schedules for the shared-bottleneck arena.

A :class:`PlayerSchedule` is the fully materialised cast of one arena
run: every player's arrival time, controller assignment, and departure
point (how many chunks they watch before leaving), plus the
cross-traffic flows contending for the same bottleneck.  Building it is
a pure function of :class:`ScheduleConfig` — one ``random.Random(seed)``
drawn in player-id order, and controller arms assigned by the same
salted-BLAKE2b hash the decision service uses for A/B routing — so the
same config always yields the same schedule, in any process.

Arrival models:

* ``stagger``     — player ``i`` arrives at ``i * stagger_s`` (the
  deterministic model; with full watch time and no cross traffic this
  reproduces :func:`repro.emulation.harness.emulate_shared_link`
  exactly — the arena's parity pin).
* ``poisson``     — i.i.d. exponential inter-arrivals with mean
  ``mean_interarrival_s`` (steady churn).
* ``flash-crowd`` — players arrive in ``flash_crowds`` bursts spaced
  ``flash_gap_s`` apart, jittered uniformly over ``flash_spread_s``
  (the thundering-herd shape).

Departures: each player watches a uniform number of chunks in
``[min_watch_chunks, max_watch_chunks]`` (clamped to the video length),
then leaves at that chunk boundary — which is how real sessions end, and
keeps every departed session scoreable.  ``max_watch_chunks=None`` means
everyone watches to the end.

Cross traffic: :class:`CrossTrafficSpec` describes constant-rate flows
(``period_s=None``) or on/off square waves (on for ``duty`` of each
period).  Flows are rate-capped, infinitely backlogged link flows — they
take ``min(rate, fair share)`` of the bottleneck while on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
import random
from typing import Optional, Tuple

from ..service.experiment import ExperimentArm, ExperimentConfig

__all__ = [
    "ARRIVAL_MODES",
    "CrossTrafficSpec",
    "PlayerSpec",
    "PlayerSchedule",
    "ScheduleConfig",
    "build_schedule",
]

ARRIVAL_MODES = ("stagger", "poisson", "flash-crowd")


@dataclass(frozen=True)
class PlayerSpec:
    """One scheduled player: who, when, what controller, how long."""

    player_id: int
    arm: str  # cohort label (experiment arm name)
    controller: str  # repro.abr.registry name
    arrival_s: float
    #: Chunks watched before departing; ``None`` = the whole video.
    watch_chunks: Optional[int]


@dataclass(frozen=True)
class CrossTrafficSpec:
    """One cross-traffic flow contending on the bottleneck."""

    label: str
    rate_kbps: float
    start_s: float = 0.0
    #: When the flow leaves for good; ``None`` = stays until the run ends.
    stop_s: Optional[float] = None
    #: On/off cycle length; ``None`` = constant while active.
    period_s: Optional[float] = None
    #: Fraction of each period the flow is on (ignored when constant).
    duty: float = 1.0

    def __post_init__(self) -> None:
        if not self.rate_kbps > 0 or math.isinf(self.rate_kbps):
            raise ValueError("cross-traffic rate must be positive and finite")
        if self.start_s < 0:
            raise ValueError("start must be >= 0")
        if self.stop_s is not None and self.stop_s <= self.start_s:
            raise ValueError("stop must be after start")
        if self.period_s is not None and self.period_s <= 0:
            raise ValueError("period must be positive")
        if not 0 < self.duty <= 1:
            raise ValueError("duty must be in (0, 1]")

    @property
    def on_s(self) -> float:
        """Seconds on per cycle (the whole period when constant)."""
        if self.period_s is None or self.duty >= 1.0:
            return math.inf
        return self.period_s * self.duty


@dataclass(frozen=True)
class PlayerSchedule:
    """The materialised cast of one arena run."""

    players: Tuple[PlayerSpec, ...]
    cross_traffic: Tuple[CrossTrafficSpec, ...] = ()

    @property
    def num_players(self) -> int:
        return len(self.players)

    def cohorts(self) -> Tuple[str, ...]:
        """Arm labels present, in first-appearance order."""
        seen = []
        for player in self.players:
            if player.arm not in seen:
                seen.append(player.arm)
        return tuple(seen)


def _default_mix() -> ExperimentConfig:
    return ExperimentConfig(arms=(ExperimentArm(name="bola", controller="bola"),))


@dataclass(frozen=True)
class ScheduleConfig:
    """Everything that determines a :class:`PlayerSchedule`."""

    players: int
    seed: int = 0
    mix: ExperimentConfig = field(default_factory=_default_mix)
    arrivals: str = "poisson"
    mean_interarrival_s: float = 1.0  # poisson
    stagger_s: float = 0.0  # stagger
    flash_crowds: int = 3  # flash-crowd
    flash_gap_s: float = 60.0
    flash_spread_s: float = 2.0
    min_watch_chunks: int = 1
    #: ``None`` = everyone watches the full video (no churn).
    max_watch_chunks: Optional[int] = None
    cross_traffic: Tuple[CrossTrafficSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.players < 1:
            raise ValueError("need at least one player")
        if self.arrivals not in ARRIVAL_MODES:
            raise ValueError(
                f"unknown arrival mode {self.arrivals!r}; pick one of {ARRIVAL_MODES}"
            )
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean inter-arrival must be positive")
        if self.stagger_s < 0:
            raise ValueError("stagger must be >= 0")
        if self.flash_crowds < 1:
            raise ValueError("need at least one flash crowd")
        if self.flash_gap_s < 0 or self.flash_spread_s < 0:
            raise ValueError("flash gap/spread must be >= 0")
        if self.min_watch_chunks < 1:
            raise ValueError("players watch at least one chunk")
        if (
            self.max_watch_chunks is not None
            and self.max_watch_chunks < self.min_watch_chunks
        ):
            raise ValueError("max watch chunks must be >= min")
        object.__setattr__(self, "cross_traffic", tuple(self.cross_traffic))


def build_schedule(config: ScheduleConfig, num_chunks: int) -> PlayerSchedule:
    """Materialise the schedule — deterministic in ``(config, num_chunks)``.

    All randomness comes from one ``random.Random(config.seed)`` consumed
    in player-id order; controller assignment hashes the player id
    through the experiment mix, exactly like service-side A/B routing.
    """
    if num_chunks < 1:
        raise ValueError("video needs at least one chunk")
    rng = random.Random(config.seed)
    players = []
    arrival = 0.0
    for pid in range(config.players):
        if config.arrivals == "stagger":
            arrival_s = pid * config.stagger_s
        elif config.arrivals == "poisson":
            arrival_s = arrival
            arrival += rng.expovariate(1.0 / config.mean_interarrival_s)
        else:  # flash-crowd: contiguous blocks of players per burst
            crowd = pid * config.flash_crowds // config.players
            arrival_s = crowd * config.flash_gap_s + (
                rng.uniform(0.0, config.flash_spread_s)
                if config.flash_spread_s > 0
                else 0.0
            )
        if config.max_watch_chunks is None:
            watch: Optional[int] = None
        else:
            lo = min(config.min_watch_chunks, num_chunks)
            hi = min(config.max_watch_chunks, num_chunks)
            watch = rng.randint(lo, hi)
            if watch >= num_chunks:
                watch = None
        arm = config.mix.assign(f"player-{pid}")
        players.append(
            PlayerSpec(
                player_id=pid,
                arm=arm.name,
                controller=arm.controller,
                arrival_s=arrival_s,
                watch_chunks=watch,
            )
        )
    return PlayerSchedule(
        players=tuple(players), cross_traffic=config.cross_traffic
    )
