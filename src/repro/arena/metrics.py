"""Time-windowed efficiency / fairness / instability for arena runs.

All metrics are computed *post hoc* from the players' per-chunk records —
no sampling events perturb the emulation, which is what lets the
2-player arena parity pin hold ``==`` against
:func:`repro.emulation.harness.emulate_shared_link`.

Per window ``[t0, t1)`` of ``window_s`` seconds:

* **utilization** — video payload kilobits delivered inside the window
  (download intervals are reconstructed from each record's wall-clock
  end, pacing wait, and download time, and split proportionally across
  the windows they overlap) over the trace's exact capacity integral
  ``trace.kilobits_between(t0, t1)``.  Protocol headers and cross
  traffic are excluded from the numerator, so utilization reads as
  "fraction of the bottleneck spent on video".
* **Jain index** — presence-weighted
  (:func:`repro.emulation.fairness.jain_fairness_index`) over each
  present player's in-window download rate, weights = seconds of
  presence; players who join or depart mid-window count by how long
  they were actually there.
* **instability** — bitrate switches per present player (a switch is a
  chunk whose level differs from its predecessor, stamped at the
  chunk's request time).

Cohort (per experiment arm) rollups ride on the fleet's lossless
:class:`~repro.fleet.aggregate.ArmAggregate` histograms, so arena cells
merge across scenario-matrix shards exactly like fleet shards do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..fleet.aggregate import ArmAggregate
from ..sim.session import SessionResult
from ..traces.trace import Trace
from .schedule import PlayerSpec
from ..emulation.fairness import jain_fairness_index, unfairness

__all__ = [
    "PlayerOutcome",
    "WindowMetrics",
    "CohortRollup",
    "ArenaTotals",
    "compute_windows",
    "compute_cohorts",
    "compute_totals",
]


@dataclass(frozen=True)
class PlayerOutcome:
    """One player's scored session plus its arena placement."""

    player_id: int
    arm: str
    controller: str
    arrival_s: float
    end_s: float  # arrival + total wall time (absolute arena clock)
    chunks: int
    departed_early: bool
    qoe_total: float
    rebuffer_s: float
    mean_bitrate_kbps: float
    switches: int
    startup_delay_s: float
    delivered_kilobits: float  # video payload over the whole session

    @property
    def presence_s(self) -> float:
        return self.end_s - self.arrival_s

    def to_dict(self) -> dict:
        return {
            "player_id": self.player_id,
            "arm": self.arm,
            "controller": self.controller,
            "arrival_s": self.arrival_s,
            "end_s": self.end_s,
            "chunks": self.chunks,
            "departed_early": self.departed_early,
            "qoe_total": self.qoe_total,
            "rebuffer_s": self.rebuffer_s,
            "mean_bitrate_kbps": self.mean_bitrate_kbps,
            "switches": self.switches,
            "startup_delay_s": self.startup_delay_s,
            "delivered_kilobits": self.delivered_kilobits,
        }


def player_outcome(
    spec: PlayerSpec, session: SessionResult, num_chunks: int
) -> PlayerOutcome:
    """Score one finished session into its arena outcome row."""
    switches = sum(
        1
        for prev, cur in zip(session.records, session.records[1:])
        if cur.level_index != prev.level_index
    )
    return PlayerOutcome(
        player_id=spec.player_id,
        arm=spec.arm,
        controller=spec.controller,
        arrival_s=spec.arrival_s,
        end_s=spec.arrival_s + session.total_wall_time_s,
        chunks=len(session.records),
        departed_early=len(session.records) < num_chunks,
        qoe_total=session.qoe().total,
        rebuffer_s=session.total_rebuffer_s,
        mean_bitrate_kbps=float(session.metrics().average_bitrate_kbps),
        switches=switches,
        startup_delay_s=session.startup_delay_s,
        delivered_kilobits=math.fsum(r.size_kilobits for r in session.records),
    )


@dataclass(frozen=True)
class WindowMetrics:
    """One ``[t0, t1)`` slice of the arena's shared-bottleneck economy."""

    index: int
    t0_s: float
    t1_s: float
    active_players: int
    delivered_kilobits: float
    capacity_kilobits: float
    utilization: Optional[float]  # None when the window had no capacity
    jain: Optional[float]  # None when nobody was present
    switches: int
    instability: Optional[float]  # switches per present player

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "t0_s": self.t0_s,
            "t1_s": self.t1_s,
            "active_players": self.active_players,
            "delivered_kilobits": self.delivered_kilobits,
            "capacity_kilobits": self.capacity_kilobits,
            "utilization": self.utilization,
            "jain": self.jain,
            "switches": self.switches,
            "instability": self.instability,
        }


def _download_interval(record) -> Tuple[float, float]:
    """The absolute wall interval a record's bytes flowed over.

    ``wall_time_end_s`` includes the post-download pacing wait; backing
    out the wait and the download time recovers the transfer span
    (request latency and retries under faults are inside it — the
    honest, application-level interval).
    """
    end = record.wall_time_end_s - record.waited_s
    return end - record.download_time_s, end


def compute_windows(
    specs: Sequence[PlayerSpec],
    sessions: Sequence[SessionResult],
    trace: Trace,
    window_s: float,
    end_s: float,
) -> List[WindowMetrics]:
    """Slice the whole run into ``window_s`` windows of shared-link metrics."""
    if window_s <= 0:
        raise ValueError("window must be positive")
    if end_s <= 0:
        return []
    num_windows = int(math.ceil(end_s / window_s))
    # Per-window, per-player delivered kilobits and per-window switches.
    delivered: List[Dict[int, float]] = [dict() for _ in range(num_windows)]
    switches = [0] * num_windows

    def clamp_index(t: float) -> int:
        return min(num_windows - 1, max(0, int(t // window_s)))

    for spec, session in zip(specs, sessions):
        prev_level = None
        for record in session.records:
            start, end = _download_interval(record)
            i0, i1 = clamp_index(start), clamp_index(end)
            span = end - start
            for i in range(i0, i1 + 1):
                w0, w1 = i * window_s, (i + 1) * window_s
                if span > 0:
                    overlap = min(end, w1) - max(start, w0)
                    if overlap <= 0:
                        continue
                    share = record.size_kilobits * (overlap / span)
                else:  # instantaneous download: bill its start window
                    if i != i0:
                        continue
                    share = record.size_kilobits
                bucket = delivered[i]
                bucket[spec.player_id] = bucket.get(spec.player_id, 0.0) + share
            if prev_level is not None and record.level_index != prev_level:
                switches[clamp_index(start)] += 1
            prev_level = record.level_index
    presence_bounds = [
        (spec.arrival_s, spec.arrival_s + session.total_wall_time_s)
        for spec, session in zip(specs, sessions)
    ]
    windows: List[WindowMetrics] = []
    for i in range(num_windows):
        t0, t1 = i * window_s, min((i + 1) * window_s, end_s)
        rates: List[float] = []
        weights: List[float] = []
        for (arrive, leave), spec in zip(presence_bounds, specs):
            present = min(leave, t1) - max(arrive, t0)
            if present <= 0:
                continue
            rates.append(delivered[i].get(spec.player_id, 0.0) / present)
            weights.append(present)
        total = math.fsum(delivered[i].values())
        capacity = trace.kilobits_between(t0, t1)
        windows.append(
            WindowMetrics(
                index=i,
                t0_s=t0,
                t1_s=t1,
                active_players=len(rates),
                delivered_kilobits=total,
                capacity_kilobits=capacity,
                utilization=total / capacity if capacity > 0 else None,
                jain=jain_fairness_index(rates, weights) if rates else None,
                switches=switches[i],
                instability=switches[i] / len(rates) if rates else None,
            )
        )
    return windows


@dataclass
class CohortRollup:
    """Per-arm population rollup on the fleet's lossless histograms."""

    sessions: int
    departed: int
    qoe_total_sum: float
    rebuffer_sum_s: float
    bitrate_sum_kbps: float
    switches: int
    chunks: int
    aggregate: ArmAggregate

    @property
    def mean_qoe(self) -> float:
        return self.qoe_total_sum / self.sessions if self.sessions else 0.0

    @property
    def mean_rebuffer_s(self) -> float:
        return self.rebuffer_sum_s / self.sessions if self.sessions else 0.0

    @property
    def mean_bitrate_kbps(self) -> float:
        return self.bitrate_sum_kbps / self.sessions if self.sessions else 0.0

    def to_dict(self) -> dict:
        return {
            "sessions": self.sessions,
            "departed": self.departed,
            "qoe_total_sum": self.qoe_total_sum,
            "rebuffer_sum_s": self.rebuffer_sum_s,
            "bitrate_sum_kbps": self.bitrate_sum_kbps,
            "switches": self.switches,
            "chunks": self.chunks,
            "aggregate": self.aggregate.to_dict(),
        }

    def merge(self, other: "CohortRollup") -> None:
        self.sessions += other.sessions
        self.departed += other.departed
        self.qoe_total_sum = math.fsum((self.qoe_total_sum, other.qoe_total_sum))
        self.rebuffer_sum_s = math.fsum((self.rebuffer_sum_s, other.rebuffer_sum_s))
        self.bitrate_sum_kbps = math.fsum(
            (self.bitrate_sum_kbps, other.bitrate_sum_kbps)
        )
        self.switches += other.switches
        self.chunks += other.chunks
        self.aggregate.merge(other.aggregate)

    @classmethod
    def empty(cls) -> "CohortRollup":
        return cls(
            sessions=0,
            departed=0,
            qoe_total_sum=0.0,
            rebuffer_sum_s=0.0,
            bitrate_sum_kbps=0.0,
            switches=0,
            chunks=0,
            aggregate=ArmAggregate(),
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "CohortRollup":
        if not isinstance(payload, dict):
            raise ValueError("cohort payload must be a JSON object")
        try:
            return cls(
                sessions=int(payload["sessions"]),
                departed=int(payload["departed"]),
                qoe_total_sum=float(payload["qoe_total_sum"]),
                rebuffer_sum_s=float(payload["rebuffer_sum_s"]),
                bitrate_sum_kbps=float(payload["bitrate_sum_kbps"]),
                switches=int(payload["switches"]),
                chunks=int(payload["chunks"]),
                aggregate=ArmAggregate.from_dict(payload["aggregate"]),
            )
        except KeyError as exc:
            raise ValueError(f"malformed cohort payload: missing {exc}") from None


def compute_cohorts(outcomes: Sequence[PlayerOutcome]) -> Dict[str, CohortRollup]:
    """Group outcomes by arm into lossless, mergeable rollups."""
    by_arm: Dict[str, List[PlayerOutcome]] = {}
    for outcome in outcomes:
        by_arm.setdefault(outcome.arm, []).append(outcome)
    cohorts: Dict[str, CohortRollup] = {}
    for arm in sorted(by_arm):
        rows = by_arm[arm]
        aggregate = ArmAggregate()
        aggregate.observe_sessions(
            [o.qoe_total / o.chunks for o in rows],
            [o.rebuffer_s for o in rows],
            [o.mean_bitrate_kbps for o in rows],
        )
        cohorts[arm] = CohortRollup(
            sessions=len(rows),
            departed=sum(1 for o in rows if o.departed_early),
            qoe_total_sum=math.fsum(o.qoe_total for o in rows),
            rebuffer_sum_s=math.fsum(o.rebuffer_s for o in rows),
            bitrate_sum_kbps=math.fsum(o.mean_bitrate_kbps for o in rows),
            switches=sum(o.switches for o in rows),
            chunks=sum(o.chunks for o in rows),
            aggregate=aggregate,
        )
    return cohorts


@dataclass(frozen=True)
class ArenaTotals:
    """Whole-run shared-link accounting."""

    duration_s: float
    delivered_kilobits: float  # video payload, all players
    cross_kilobits: float  # cross-traffic bytes over the same span
    capacity_kilobits: float  # exact trace integral over [0, duration]
    utilization: Optional[float]  # (video + cross) / capacity
    video_utilization: Optional[float]  # video / capacity
    jain: Optional[float]  # presence-weighted, whole-run rates
    unfairness: Optional[float]
    switches: int

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "delivered_kilobits": self.delivered_kilobits,
            "cross_kilobits": self.cross_kilobits,
            "capacity_kilobits": self.capacity_kilobits,
            "utilization": self.utilization,
            "video_utilization": self.video_utilization,
            "jain": self.jain,
            "unfairness": self.unfairness,
            "switches": self.switches,
        }


def compute_totals(
    outcomes: Sequence[PlayerOutcome],
    trace: Trace,
    cross_kilobits: float,
    end_s: float,
) -> ArenaTotals:
    """Whole-run efficiency and fairness over the players' full lifetimes."""
    delivered = math.fsum(o.delivered_kilobits for o in outcomes)
    capacity = trace.kilobits_between(0.0, end_s) if end_s > 0 else 0.0
    rates = [
        o.delivered_kilobits / o.presence_s for o in outcomes if o.presence_s > 0
    ]
    weights = [o.presence_s for o in outcomes if o.presence_s > 0]
    jain = jain_fairness_index(rates, weights) if rates else None
    return ArenaTotals(
        duration_s=end_s,
        delivered_kilobits=delivered,
        cross_kilobits=cross_kilobits,
        capacity_kilobits=capacity,
        utilization=(delivered + cross_kilobits) / capacity if capacity > 0 else None,
        video_utilization=delivered / capacity if capacity > 0 else None,
        jain=jain,
        unfairness=unfairness(rates, weights) if rates else None,
        switches=sum(o.switches for o in outcomes),
    )
