"""The arena: N players, one bottleneck, churn, cross traffic, faults.

:func:`run_arena` materialises a :class:`~repro.arena.schedule.ScheduleConfig`
into players (each its own :class:`~repro.emulation.client.EmulatedClient`
driving a registry controller), attaches cross-traffic flows to the shared
:class:`~repro.emulation.link.SharedTraceLink`, and drives one event queue
to completion.  Everything is deterministic in the config: the same
:class:`ArenaConfig` always produces a byte-identical
:meth:`ArenaResult.to_json`, in any process, under any fault profile.

Parity pin: with ``arrivals="stagger"``, no departures
(``max_watch_chunks=None``) and no cross traffic, the arena is — by
construction, same link/server/client objects, same event order — the
*exact* run :func:`repro.emulation.harness.emulate_shared_link` performs,
and the pin test asserts ``==`` on every record.

Departures are chunk-boundary departures: a player scheduled to watch
``w`` chunks plays a ``w``-chunk truncation of the video and leaves when
it ends, so every departed session remains a complete, scoreable
:class:`~repro.sim.session.SessionResult`.

Cross traffic keeps the link's progress loop alive indefinitely (an
infinitely backlogged flow never completes), so the arena drives the
queue itself and stops once every player has finished rather than
waiting for an idle queue.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..abr import registry
from ..abr.base import SessionConfig
from ..emulation.clock import EventQueue
from ..emulation.client import EmulatedClient
from ..emulation.harness import NetworkProfile, _build_link
from ..emulation.server import ChunkServer
from ..faults.profiles import get_profile
from ..sim.session import SessionResult
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from .metrics import (
    ArenaTotals,
    CohortRollup,
    PlayerOutcome,
    WindowMetrics,
    compute_cohorts,
    compute_totals,
    compute_windows,
    player_outcome,
)
from .schedule import (
    CrossTrafficSpec,
    PlayerSchedule,
    ScheduleConfig,
    build_schedule,
)

__all__ = ["ArenaConfig", "ArenaResult", "run_arena"]

#: Matches :meth:`EventQueue.run_until_idle`'s runaway guard.
_EVENT_BUDGET = 10_000_000


@dataclass(frozen=True)
class ArenaConfig:
    """Everything that determines one arena run.

    Frozen and picklable, so scenario-matrix workers can receive cells
    over ``multiprocessing`` untouched.
    """

    schedule: ScheduleConfig
    trace: Trace
    manifest: VideoManifest
    session: SessionConfig = field(default_factory=SessionConfig)
    network: NetworkProfile = field(default_factory=NetworkProfile)
    #: Named fault profile (:data:`repro.faults.profiles.PROFILES`); only
    #: its trace/link faults apply — there is no decision server here.
    profile: str = "clean"
    fault_seed: int = 0
    #: Width of the time-windowed fairness/efficiency slices.
    window_s: float = 10.0

    def __post_init__(self) -> None:
        get_profile(self.profile)  # validate the name eagerly
        if self.window_s <= 0:
            raise ValueError("window must be positive")


class ArenaResult:
    """One arena run: per-player outcomes, windowed metrics, cohort rollups.

    ``sessions`` keeps the raw per-player :class:`SessionResult` objects
    (in player-id order) for parity tests and ad-hoc analysis; they are
    deliberately *not* part of :meth:`to_dict`, which carries only the
    derived, mergeable summary.
    """

    def __init__(
        self,
        config: ArenaConfig,
        schedule: PlayerSchedule,
        sessions: Tuple[SessionResult, ...],
        outcomes: Tuple[PlayerOutcome, ...],
        windows: List[WindowMetrics],
        cohorts: Dict[str, CohortRollup],
        totals: ArenaTotals,
        cross_kilobits: Dict[str, float],
    ) -> None:
        self.config = config
        self.schedule = schedule
        self.sessions = sessions
        self.outcomes = outcomes
        self.windows = windows
        self.cohorts = cohorts
        self.totals = totals
        self.cross_kilobits = cross_kilobits

    @property
    def num_players(self) -> int:
        return len(self.outcomes)

    def to_dict(self) -> dict:
        """Deterministic summary — no wall-clock, no object identities."""
        return {
            "players": self.num_players,
            "seed": self.config.schedule.seed,
            "arrivals": self.config.schedule.arrivals,
            "profile": self.config.profile,
            "window_s": self.config.window_s,
            "trace": self.config.trace.name,
            "cohort_labels": list(self.schedule.cohorts()),
            "outcomes": [o.to_dict() for o in self.outcomes],
            "windows": [w.to_dict() for w in self.windows],
            "cohorts": {
                arm: self.cohorts[arm].to_dict() for arm in sorted(self.cohorts)
            },
            "totals": self.totals.to_dict(),
            "cross_traffic_kilobits": {
                label: self.cross_kilobits[label]
                for label in sorted(self.cross_kilobits)
            },
        }

    def to_json(self) -> str:
        """Canonical byte-stable encoding (the determinism contract)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


class _CrossDriver:
    """Schedules one cross-traffic spec's on/off lifecycle on the queue.

    The on→off→on chain reschedules itself lazily, one cycle at a time,
    so unbounded periodic flows never pre-populate an infinite event
    list; whatever is still on when the supervisor stops is swept up by
    :meth:`shutdown`.
    """

    def __init__(
        self,
        spec: CrossTrafficSpec,
        link,
        queue: EventQueue,
        ledger: Dict[str, float],
    ) -> None:
        self.spec = spec
        self.link = link
        self.queue = queue
        self.ledger = ledger
        self.flow = None
        self._cycle = 0
        self._schedule_next_on()

    def _cycle_start_s(self) -> float:
        if self.spec.period_s is None:
            return self.spec.start_s
        return self.spec.start_s + self._cycle * self.spec.period_s

    def _schedule_next_on(self) -> None:
        start = self._cycle_start_s()
        if self.spec.stop_s is not None and start >= self.spec.stop_s:
            return
        self.queue.schedule_at(start, self._turn_on)

    def _turn_on(self) -> None:
        if self.flow is not None:  # pragma: no cover - defensive
            return
        self.flow = self.link.add_cross_flow(
            self.spec.rate_kbps, label=self.spec.label
        )
        off_at: Optional[float] = self.spec.stop_s
        if self.spec.period_s is not None and self.spec.duty < 1.0:
            burst_end = self._cycle_start_s() + self.spec.on_s
            off_at = burst_end if off_at is None else min(off_at, burst_end)
        if off_at is not None:
            self.queue.schedule_at(off_at, self._turn_off)

    def _turn_off(self) -> None:
        if self.flow is None:
            return
        self._bank(self.link.remove_cross_flow(self.flow))
        self.flow = None
        self._cycle += 1
        if self.spec.period_s is not None:
            self._schedule_next_on()

    def shutdown(self) -> None:
        """Detach a still-on flow at run end, banking its bytes."""
        if self.flow is not None:
            self._bank(self.link.remove_cross_flow(self.flow))
            self.flow = None

    def _bank(self, kilobits: float) -> None:
        label = self.spec.label
        self.ledger[label] = self.ledger.get(label, 0.0) + kilobits


def _drive(queue: EventQueue, clients: List[EmulatedClient]) -> None:
    """Run the queue until every player finishes.

    With cross traffic attached the link never goes idle (an infinitely
    backlogged flow always has a next progress event), so draining the
    queue is not a termination condition — finished players are.
    """
    pending = list(clients)
    executed = 0
    while pending:
        # Pop finished players off the tail before touching the queue:
        # the loop stops on the exact event that finishes the last
        # player, so cross-traffic byte accounting never runs past it.
        if pending[-1].finished:
            pending.pop()
            continue
        if not queue.run_next():
            raise RuntimeError(
                "event queue drained with unfinished players — "
                f"{len(pending)} stuck (first: client "
                f"{pending[-1].client_id})"
            )
        executed += 1
        if executed >= _EVENT_BUDGET:
            raise RuntimeError(
                f"event budget of {_EVENT_BUDGET} exhausted — runaway arena?"
            )


def run_arena(config: ArenaConfig, tracer=None) -> ArenaResult:
    """Run one arena to completion; deterministic in ``config``.

    A :class:`repro.obs.Tracer` receives every player's per-chunk event
    timeline (session ids ``"<arm>#p<player_id>"``) plus one
    ``arena_window`` event per metrics window and a final
    ``arena_summary`` (see ``docs/observability.md``).
    """
    manifest = config.manifest
    schedule = build_schedule(config.schedule, manifest.num_chunks)
    queue = EventQueue()
    profile = get_profile(config.profile)
    link = _build_link(
        config.trace,
        queue,
        config.network,
        profile.trace_faults or None,
        config.fault_seed,
    )
    server = ChunkServer(
        manifest,
        header_kilobits=config.network.header_kilobits,
        processing_delay_s=config.network.server_processing_delay_s,
    )
    clients: List[EmulatedClient] = []
    specs = schedule.players
    for spec in specs:
        watched = (
            manifest
            if spec.watch_chunks is None
            else manifest.truncated(spec.watch_chunks)
        )
        clients.append(
            EmulatedClient(
                client_id=spec.player_id,
                algorithm=registry.create(spec.controller),
                manifest=watched,
                config=config.session,
                queue=queue,
                link=link,
                server=server,
                rtt_s=config.network.rtt_s,
                start_time_s=spec.arrival_s,
                tracer=tracer,
                session_id=f"{spec.arm}#p{spec.player_id}",
            )
        )
    ledger: Dict[str, float] = {}
    drivers = [
        _CrossDriver(spec, link, queue, ledger)
        for spec in schedule.cross_traffic
    ]
    if drivers:
        _drive(queue, clients)
        for driver in drivers:
            driver.shutdown()
    else:
        # No cross traffic: the queue drains exactly like
        # emulate_shared_link's, byte for byte (the parity path).
        queue.run_until_idle()
    sessions = tuple(client.result() for client in clients)
    outcomes = tuple(
        player_outcome(spec, session, manifest.num_chunks)
        for spec, session in zip(specs, sessions)
    )
    end_s = max(o.end_s for o in outcomes)
    windows = compute_windows(specs, sessions, config.trace, config.window_s, end_s)
    cohorts = compute_cohorts(outcomes)
    totals = compute_totals(
        outcomes, config.trace, math.fsum(ledger.values()), end_s
    )
    result = ArenaResult(
        config=config,
        schedule=schedule,
        sessions=sessions,
        outcomes=outcomes,
        windows=windows,
        cohorts=cohorts,
        totals=totals,
        cross_kilobits=dict(sorted(ledger.items())),
    )
    if tracer is not None and tracer.enabled:
        _emit_arena_events(tracer, result)
    return result


def _emit_arena_events(tracer, result: ArenaResult) -> None:
    from ..obs.events import ArenaSummary, ArenaWindow

    arena_id = (
        f"arena:{result.config.trace.name}"
        f"#seed{result.config.schedule.seed}"
    )
    for w in result.windows:
        tracer.emit(
            ArenaWindow(
                session_id=arena_id,
                t_mono=tracer.now(),
                index=w.index,
                t0_s=w.t0_s,
                t1_s=w.t1_s,
                active_players=w.active_players,
                utilization=w.utilization,
                jain=w.jain,
                switches=w.switches,
                instability=w.instability,
            )
        )
    totals = result.totals
    tracer.emit(
        ArenaSummary(
            session_id=arena_id,
            t_mono=tracer.now(),
            players=result.num_players,
            duration_s=totals.duration_s,
            utilization=totals.utilization,
            jain=totals.jain,
            unfairness=totals.unfairness,
            switches=totals.switches,
            cross_kilobits=totals.cross_kilobits,
        )
    )
