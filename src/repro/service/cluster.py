"""Multi-process sharded decision service (the scale-out tier).

One asyncio :class:`~repro.service.server.DecisionServer` process caps
warm FastMPC throughput at a single core.  The paper's Section 5 design
makes the hot path trivially shardable — the decision table is immutable
and position-independent once serialized — so this module scales it the
way CDN-scale table-serving deployments do:

* **One table file, N readers.**  The supervisor publishes the decision
  table to disk once (:func:`repro.experiments.persistence.publish_table`)
  and every worker maps it read-only through
  :meth:`~repro.core.table.DecisionTable.from_buffer` — zero copies, one
  page-cache residency, no coordination.  Each worker parity-checks its
  mapping before serving.

* **Kernel-level sharding.**  Workers bind the same host:port with
  ``SO_REUSEPORT`` and the kernel spreads incoming connections across
  them.  On platforms without ``SO_REUSEPORT`` the supervisor falls back
  to per-worker ephemeral ports behind a small asyncio TCP round-robin
  frontend (:class:`_RoundRobinFrontend`) on the public port.

* **Supervision.**  Each worker holds a duplex control pipe to the
  supervisor: readiness, ping/pong health checks, and per-worker metrics
  snapshots travel over it.  A dead worker (crash, ``worker-kill``
  chaos, SIGKILL) is detected by the monitor loop and restarted with
  seeded exponential backoff — the same
  :class:`~repro.service.client.RetryPolicy` backoff machinery the
  fault-injection layer hardened the client with.

* **Cluster-wide telemetry.**  The supervisor serves its own control
  endpoint: ``GET /metrics`` aggregates every worker's snapshot —
  counter sums plus lossless fixed-bucket histogram merges
  (:func:`~repro.service.metrics.merge_metrics_snapshots`) — and
  ``GET /healthz`` reports per-worker liveness and restart counts.

Everything is standard library.  See ``docs/scaling.md`` for the
operational model and ``tests/service/test_cluster.py`` /
``benchmarks/test_perf_cluster.py`` for the scale-test harness.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import random
import signal
import socket
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.chaos import ChaosConfig, ChaosPolicy
from .client import RetryPolicy
from .experiment import ExperimentConfig
from .metrics import ServiceMetrics, merge_metrics_snapshots
from .prior import merge_prior_snapshots
from .server import DecisionServer, DecisionService, ServiceConfig, _parse_head

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterSupervisor",
    "WorkerSpec",
    "supports_reuse_port",
    "KILLED_BY_CHAOS_EXIT",
]

#: Exit code a worker uses when the ``worker-kill`` chaos action fires.
KILLED_BY_CHAOS_EXIT = 73

#: Per-worker chaos seeds are derived as ``seed + index * _CHAOS_SEED_STRIDE``
#: so shards draw distinct (but still replayable) action sequences.
_CHAOS_SEED_STRIDE = 9973


class ClusterError(RuntimeError):
    """The cluster could not be started or managed as configured."""


def supports_reuse_port() -> bool:
    """Whether this platform can shard one port across processes.

    ``SO_REUSEPORT`` must exist *and* actually be settable (some
    platforms define the constant but reject it).
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:  # pragma: no cover - constant present but rejected
        return False


@dataclass(frozen=True)
class ClusterConfig:
    """Operational knobs of the sharded service.

    ``reuse_port=None`` auto-detects; forcing ``False`` exercises the
    round-robin frontend fallback on any platform.  Restart backoff is
    the client retry curve (base * multiplier**failures, capped, with
    seeded jitter); a worker that stays up ``stable_after_s`` gets its
    failure streak reset, so one crash long after another starts back at
    the base delay instead of the escalated one.
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0  # public data port; 0 = ephemeral
    control_port: Optional[int] = 0  # supervisor endpoint; None disables
    reuse_port: Optional[bool] = None  # None = auto-detect
    start_method: Optional[str] = None  # None = fork if available
    ready_timeout_s: float = 15.0
    poll_interval_s: float = 0.05
    heartbeat_interval_s: float = 1.0
    hang_timeout_s: float = 5.0
    restart_base_delay_s: float = 0.05
    restart_multiplier: float = 2.0
    restart_max_delay_s: float = 2.0
    restart_jitter: float = 0.5
    restart_seed: int = 0
    stable_after_s: float = 5.0
    service: ServiceConfig = ServiceConfig()
    chaos: Optional[ChaosConfig] = None
    #: A/B routing config installed on every worker at spawn.  Assignment
    #: is a pure hash of the session id, so all workers agree on every
    #: session's arm with zero coordination — including across restarts.
    experiment: Optional[ExperimentConfig] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("need at least one worker")
        if self.ready_timeout_s <= 0 or self.poll_interval_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.heartbeat_interval_s <= 0 or self.hang_timeout_s <= 0:
            raise ValueError("heartbeat intervals must be positive")
        if self.start_method is not None:
            if self.start_method not in multiprocessing.get_all_start_methods():
                raise ValueError(
                    f"start method {self.start_method!r} unavailable here"
                )

    @property
    def restart_policy(self) -> RetryPolicy:
        """The worker-restart backoff curve, as a client retry policy."""
        return RetryPolicy(
            max_attempts=2,  # unused by backoff_s; restarts are unbounded
            base_delay_s=self.restart_base_delay_s,
            multiplier=self.restart_multiplier,
            max_delay_s=self.restart_max_delay_s,
            jitter=self.restart_jitter,
            budget_s=3600.0,
            seed=self.restart_seed,
        )


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, picklable for any start method."""

    index: int
    host: str
    port: int  # shared port under SO_REUSEPORT; 0 = own ephemeral port
    reuse_port: bool
    ladder_kbps: Tuple[float, ...]
    table_path: Optional[str]
    service: ServiceConfig
    chaos: Optional[ChaosConfig]
    experiment: Optional[ExperimentConfig] = None


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


async def _worker_serve(spec: WorkerSpec, conn) -> None:
    """One worker: map the table, serve, answer the control pipe."""
    table = None
    if spec.table_path is not None:
        # Imported lazily: the service package must not drag the whole
        # experiments pipeline in just because the cluster exists.
        from ..experiments.persistence import map_published_table

        table = map_published_table(spec.table_path)
    service = DecisionService(
        spec.ladder_kbps,
        table=table,
        config=spec.service,
        metrics=ServiceMetrics(),
        experiment=spec.experiment,
    )
    chaos = (
        ChaosPolicy(spec.chaos)
        if spec.chaos is not None and spec.chaos.any_enabled
        else None
    )
    kill_hook: Optional[Callable[[], None]] = None
    if spec.chaos is not None and spec.chaos.kill_rate > 0:
        kill_hook = lambda: os._exit(KILLED_BY_CHAOS_EXIT)  # noqa: E731
    server = DecisionServer(
        service,
        spec.host,
        spec.port,
        chaos=chaos,
        reuse_port=spec.reuse_port,
        worker_id=spec.index,
        kill_hook=kill_hook,
    )
    await server.start()
    conn.send(("ready", server.bound_port, os.getpid()))

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()

    def on_pipe() -> None:
        try:
            while conn.poll():
                message = conn.recv()
                kind = message[0]
                if kind == "stop":
                    stop.set()
                elif kind == "ping":
                    conn.send(("pong", message[1]))
                elif kind == "metrics":
                    conn.send(("metrics", message[1], service.metrics_document()))
        except (EOFError, OSError):
            # Supervisor is gone: a worker must not outlive it.
            stop.set()

    loop.add_reader(conn.fileno(), on_pipe)
    try:
        await stop.wait()
    finally:
        loop.remove_reader(conn.fileno())
        await server.close()


def _worker_main(spec: WorkerSpec, conn) -> None:
    """Process entry point (top-level so every start method can pickle it).

    Under the ``fork`` start method the supervisor forks from *inside*
    its running event loop (restarts happen in the monitor task), so the
    child inherits thread state claiming a loop is already running —
    clear it before building this process's own loop.
    """
    try:
        asyncio.events._set_running_loop(None)
    except AttributeError:  # pragma: no cover - private API moved
        pass
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        loop.run_until_complete(_worker_serve(spec, conn))
    except KeyboardInterrupt:  # pragma: no cover - operator ^C
        pass
    finally:
        try:
            loop.close()
        except Exception:  # pragma: no cover
            pass


# ---------------------------------------------------------------------------
# Supervisor-side worker bookkeeping
# ---------------------------------------------------------------------------


class _WorkerSlot:
    """One supervised worker position (survives restarts of its process)."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "spec",
        "data_port",
        "pid",
        "ready",
        "pending",
        "request_seq",
        "restarts",
        "failures",
        "ready_at",
        "restarting",
        "reader_registered",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.spec: Optional[WorkerSpec] = None
        self.data_port: Optional[int] = None
        self.pid: Optional[int] = None
        self.ready: Optional[asyncio.Future] = None
        self.pending: Dict[int, asyncio.Future] = {}
        self.request_seq = 0
        self.restarts = 0
        self.failures = 0
        self.ready_at = 0.0
        self.restarting = False
        self.reader_registered = False

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def serving(self) -> bool:
        return (
            self.alive
            and not self.restarting
            and self.ready is not None
            and self.ready.done()
            and not self.ready.cancelled()
        )


# ---------------------------------------------------------------------------
# Round-robin TCP frontend (fallback when SO_REUSEPORT is unavailable)
# ---------------------------------------------------------------------------


class _RoundRobinFrontend:
    """A minimal asyncio TCP proxy fanning connections over worker ports.

    Connection-granular (not request-granular): each accepted client
    connection is pinned to one live worker and bytes are relayed both
    ways until either side closes — the same stickiness ``SO_REUSEPORT``
    gives, so client keep-alive behaviour is identical in both modes.
    A backend that refuses the dial (worker mid-restart) is skipped and
    the next one tried.
    """

    def __init__(
        self, host: str, port: int, backend_ports: Callable[[], List[int]]
    ) -> None:
        self._host = host
        self._port = port
        self._backend_ports = backend_ports
        self._next = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._relays: set = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )

    @property
    def bound_port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("frontend is not running")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._relays):
            task.cancel()
        if self._relays:
            await asyncio.gather(*self._relays, return_exceptions=True)
        self._relays.clear()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._relays.add(task)
        upstream_writer = None
        try:
            ports = self._backend_ports()
            upstream = None
            for offset in range(len(ports)):
                port = ports[(self._next + offset) % len(ports)]
                try:
                    upstream = await asyncio.wait_for(
                        asyncio.open_connection(self._host, port), 1.0
                    )
                    self._next = (self._next + offset + 1) % len(ports)
                    break
                except (OSError, asyncio.TimeoutError):
                    continue
            if upstream is None:
                return  # no live backend: drop the connection
            upstream_reader, upstream_writer = upstream
            await asyncio.gather(
                self._relay(reader, upstream_writer),
                self._relay(upstream_reader, writer),
            )
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._relays.discard(task)
            for w in (writer, upstream_writer):
                if w is None:
                    continue
                w.close()
                try:
                    await w.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass

    @staticmethod
    async def _relay(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                writer.write_eof()
            except (OSError, RuntimeError):
                pass


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


class ClusterSupervisor:
    """Fork, watch, restart, and aggregate N decision-server workers.

    Lifecycle::

        supervisor = ClusterSupervisor(ladder, table_path=path,
                                       config=ClusterConfig(workers=4))
        await supervisor.start()
        ... serve on supervisor.bound_port ...
        snapshot = await supervisor.metrics()
        await supervisor.stop()

    The supervisor is asyncio-native: worker pipes are wired into the
    running loop with ``add_reader``, the monitor is a task, and
    restarts are scheduled coroutines — so it composes with an
    in-process load generator in one loop (how the scale tests run it).
    """

    def __init__(
        self,
        ladder_kbps: Sequence[float],
        table_path: Optional[str] = None,
        config: Optional[ClusterConfig] = None,
    ) -> None:
        self.ladder_kbps = tuple(float(r) for r in ladder_kbps)
        if not self.ladder_kbps:
            raise ValueError("ladder must be non-empty")
        self.table_path = str(table_path) if table_path is not None else None
        self.config = config if config is not None else ClusterConfig()
        method = self.config.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(method)
        self.start_method = method
        self.reuse_port = (
            self.config.reuse_port
            if self.config.reuse_port is not None
            else supports_reuse_port()
        )
        self._slots: List[_WorkerSlot] = []
        self._placeholder: Optional[socket.socket] = None
        self._frontend: Optional[_RoundRobinFrontend] = None
        self._control: Optional[asyncio.AbstractServer] = None
        self._monitor: Optional[asyncio.Task] = None
        self._restart_tasks: set = set()
        self._restart_rng = random.Random(self.config.restart_seed)
        self._data_port: Optional[int] = None
        self.restarts_total = 0
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            raise ClusterError("cluster already started")
        self._started = True
        config = self.config
        try:
            if self.reuse_port:
                # Reserve the shared port with a bound (never listening)
                # placeholder: it keeps the number stable across worker
                # restarts without ever receiving a connection.
                placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                placeholder.bind((config.host, config.port))
                self._placeholder = placeholder
                self._data_port = placeholder.getsockname()[1]
            for index in range(config.workers):
                slot = _WorkerSlot(index)
                self._slots.append(slot)
                self._spawn(slot)
            await asyncio.gather(*(self._wait_ready(slot) for slot in self._slots))
            if not self.reuse_port:
                self._frontend = _RoundRobinFrontend(
                    config.host, config.port, self._live_ports
                )
                await self._frontend.start()
                self._data_port = self._frontend.bound_port
            if config.control_port is not None:
                self._control = await asyncio.start_server(
                    self._handle_control, config.host, config.control_port
                )
            self._monitor = asyncio.get_running_loop().create_task(
                self._monitor_loop()
            )
        except BaseException:
            await self.stop()
            raise

    async def stop(self) -> None:
        """Stop monitoring, shut workers down, tear everything down."""
        self._stopping = True
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except (asyncio.CancelledError, Exception):
                pass
            self._monitor = None
        for task in list(self._restart_tasks):
            task.cancel()
        if self._restart_tasks:
            await asyncio.gather(*self._restart_tasks, return_exceptions=True)
        self._restart_tasks.clear()
        for slot in self._slots:
            self._send_safely(slot, ("stop",))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 2.0
        while any(slot.alive for slot in self._slots) and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for slot in self._slots:
            if slot.alive:
                slot.process.terminate()
        deadline = loop.time() + 1.0
        while any(slot.alive for slot in self._slots) and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for slot in self._slots:
            if slot.alive:  # pragma: no cover - terminate() refused to stick
                slot.process.kill()
            self._teardown_slot_io(slot)
            if slot.process is not None:
                slot.process.join(timeout=1.0)
        if self._frontend is not None:
            await self._frontend.close()
            self._frontend = None
        if self._control is not None:
            self._control.close()
            await self._control.wait_closed()
            self._control = None
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None

    async def __aenter__(self) -> "ClusterSupervisor":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def bound_port(self) -> int:
        """The public data port clients dial."""
        if self._data_port is None:
            raise RuntimeError("cluster is not running")
        return self._data_port

    @property
    def control_bound_port(self) -> int:
        """The supervisor's own /metrics + /healthz port."""
        if self._control is None or not self._control.sockets:
            raise RuntimeError("control endpoint is not running")
        return self._control.sockets[0].getsockname()[1]

    @property
    def alive_workers(self) -> int:
        return sum(1 for slot in self._slots if slot.serving)

    def worker_pids(self) -> List[Optional[int]]:
        return [slot.pid for slot in self._slots]

    def kill_worker(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Send ``sig`` to a worker process (scale tests and chaos drills).

        Returns the PID signalled.  Death is detected and repaired by
        the monitor like any other crash.
        """
        slot = self._slots[index]
        if slot.process is None or slot.pid is None or not slot.alive:
            raise ClusterError(f"worker {index} is not running")
        os.kill(slot.pid, sig)
        return slot.pid

    async def wait_healthy(self, timeout_s: float = 10.0) -> None:
        """Block until every worker slot is serving again."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            if all(slot.serving for slot in self._slots):
                return
            await asyncio.sleep(0.02)
        raise ClusterError(f"cluster not healthy within {timeout_s}s")

    # ------------------------------------------------------------------
    # Metrics aggregation
    # ------------------------------------------------------------------

    async def metrics(self) -> dict:
        """The cluster-wide ``/metrics`` document.

        Per-worker snapshots are fetched over the control pipes and
        merged losslessly (counter sums, bucket-by-bucket histogram
        merges); a worker mid-restart is reported in the roster but
        contributes nothing — its counters return with it.
        """
        snapshots: List[dict] = []
        roster: List[dict] = []
        for slot in self._slots:
            status = "ok"
            if not slot.alive:
                status = "dead"
            elif slot.restarting or not slot.serving:
                status = "restarting"
            else:
                try:
                    snapshots.append(await self._ask(slot, "metrics", timeout=1.0))
                except (ClusterError, asyncio.TimeoutError):
                    status = "unreachable"
            roster.append(
                {
                    "worker": slot.index,
                    "pid": slot.pid,
                    "port": slot.data_port,
                    "status": status,
                    "restarts": slot.restarts,
                }
            )
        if snapshots:
            merged = merge_metrics_snapshots(snapshots)
            # Shared-prior sections merge losslessly too (integer bucket
            # sums per family); .get — snapshots from workers predating
            # the prior store simply contribute nothing.
            prior_sections = [s["priors"] for s in snapshots if s.get("priors")]
            if prior_sections:
                merged["priors"] = merge_prior_snapshots(prior_sections)
        else:  # every worker mid-restart: an all-zero document
            merged = ServiceMetrics().snapshot()
        merged["cluster"] = {
            "workers": len(self._slots),
            "alive": self.alive_workers,
            "restarts_total": self.restarts_total,
            "reuse_port": self.reuse_port,
            "start_method": self.start_method,
            "workers_detail": roster,
        }
        return merged

    def health(self) -> dict:
        alive = self.alive_workers
        return {
            "status": "ok" if alive == len(self._slots) else "degraded",
            "workers": len(self._slots),
            "alive": alive,
            "restarts_total": self.restarts_total,
            "reuse_port": self.reuse_port,
        }

    # ------------------------------------------------------------------
    # Worker process management
    # ------------------------------------------------------------------

    def _make_spec(self, index: int) -> WorkerSpec:
        chaos = self.config.chaos
        if chaos is not None:
            chaos = replace(chaos, seed=chaos.seed + index * _CHAOS_SEED_STRIDE)
        return WorkerSpec(
            index=index,
            host=self.config.host,
            port=self._data_port if self.reuse_port else 0,
            reuse_port=self.reuse_port,
            ladder_kbps=self.ladder_kbps,
            table_path=self.table_path,
            service=self.config.service,
            chaos=chaos,
            experiment=self.config.experiment,
        )

    def _spawn(self, slot: _WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        spec = self._make_spec(slot.index)
        process = self._ctx.Process(
            target=_worker_main,
            args=(spec, child_conn),
            name=f"repro-decision-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.spec = spec
        slot.data_port = None
        slot.pid = process.pid
        slot.pending = {}
        loop = asyncio.get_running_loop()
        slot.ready = loop.create_future()
        loop.add_reader(parent_conn.fileno(), self._on_worker_message, slot)
        slot.reader_registered = True

    def _teardown_slot_io(self, slot: _WorkerSlot) -> None:
        if slot.conn is not None:
            if slot.reader_registered:
                try:
                    asyncio.get_running_loop().remove_reader(slot.conn.fileno())
                except (RuntimeError, OSError, ValueError):
                    pass
                slot.reader_registered = False
            try:
                slot.conn.close()
            except OSError:
                pass
            slot.conn = None
        for future in slot.pending.values():
            if not future.done():
                future.set_exception(ClusterError("worker connection closed"))
        slot.pending = {}

    def _on_worker_message(self, slot: _WorkerSlot) -> None:
        conn = slot.conn
        if conn is None:
            return
        try:
            while conn.poll():
                message = conn.recv()
                kind = message[0]
                if kind == "ready":
                    slot.data_port = message[1]
                    slot.pid = message[2]
                    if slot.ready is not None and not slot.ready.done():
                        slot.ready.set_result(None)
                elif kind in ("pong", "metrics"):
                    future = slot.pending.pop(message[1], None)
                    if future is not None and not future.done():
                        future.set_result(
                            message[2] if kind == "metrics" else None
                        )
        except (EOFError, OSError):
            # Worker died with the pipe open; the monitor handles the
            # process itself — here we only retire the I/O.
            self._teardown_slot_io(slot)

    def _send_safely(self, slot: _WorkerSlot, message: tuple) -> bool:
        if slot.conn is None:
            return False
        try:
            slot.conn.send(message)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    async def _ask(self, slot: _WorkerSlot, kind: str, timeout: float):
        """One request/response over a worker's control pipe."""
        if slot.conn is None:
            raise ClusterError(f"worker {slot.index} has no control pipe")
        slot.request_seq += 1
        request_id = slot.request_seq
        future = asyncio.get_running_loop().create_future()
        slot.pending[request_id] = future
        if not self._send_safely(slot, (kind, request_id)):
            slot.pending.pop(request_id, None)
            raise ClusterError(f"worker {slot.index} control pipe is down")
        try:
            return await asyncio.wait_for(future, timeout)
        finally:
            slot.pending.pop(request_id, None)

    async def _wait_ready(self, slot: _WorkerSlot) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.ready_timeout_s
        while True:
            if slot.ready is not None and slot.ready.done():
                slot.ready_at = loop.time()
                return
            if not slot.alive:
                code = slot.process.exitcode if slot.process is not None else None
                raise ClusterError(
                    f"worker {slot.index} exited (code {code}) before ready"
                )
            if loop.time() > deadline:
                raise ClusterError(
                    f"worker {slot.index} not ready within "
                    f"{self.config.ready_timeout_s}s"
                )
            await asyncio.sleep(0.01)

    def _live_ports(self) -> List[int]:
        return [
            slot.data_port
            for slot in self._slots
            if slot.serving and slot.data_port is not None
        ]

    # ------------------------------------------------------------------
    # Monitoring + restarts
    # ------------------------------------------------------------------

    async def _monitor_loop(self) -> None:
        loop = asyncio.get_running_loop()
        last_heartbeat = loop.time()
        while True:
            await asyncio.sleep(self.config.poll_interval_s)
            for slot in self._slots:
                if slot.restarting:
                    continue
                if not slot.alive:
                    self._begin_restart(slot)
            if loop.time() - last_heartbeat >= self.config.heartbeat_interval_s:
                last_heartbeat = loop.time()
                for slot in self._slots:
                    if slot.serving:
                        task = loop.create_task(self._heartbeat(slot))
                        self._restart_tasks.add(task)
                        task.add_done_callback(self._restart_tasks.discard)

    async def _heartbeat(self, slot: _WorkerSlot) -> None:
        """Ping one worker; a hung worker is terminated (then restarted)."""
        try:
            await self._ask(slot, "ping", timeout=self.config.hang_timeout_s)
        except (ClusterError, asyncio.TimeoutError):
            if slot.alive and not slot.restarting and not self._stopping:
                slot.process.terminate()  # monitor restarts it

    def _begin_restart(self, slot: _WorkerSlot) -> None:
        loop = asyncio.get_running_loop()
        slot.restarting = True
        self.restarts_total += 1
        # A long-stable worker restarts on the base delay; a crash loop
        # escalates exponentially (seeded jitter keeps runs replayable).
        if slot.ready_at and loop.time() - slot.ready_at > self.config.stable_after_s:
            slot.failures = 0
        delay = self.config.restart_policy.backoff_s(
            slot.failures, self._restart_rng
        )
        slot.failures += 1
        slot.restarts += 1
        self._teardown_slot_io(slot)
        if slot.process is not None:
            slot.process.join(timeout=0)  # reap the zombie, never block
        task = loop.create_task(self._restart(slot, delay))
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _restart(self, slot: _WorkerSlot, delay: float) -> None:
        try:
            await asyncio.sleep(delay)
            if self._stopping:
                return
            self._spawn(slot)
            await self._wait_ready(slot)
            slot.restarting = False
        except asyncio.CancelledError:
            raise
        except ClusterError:
            # The replacement died before ready: loop through the
            # escalating-backoff path again.
            if not self._stopping:
                self._begin_restart(slot)

    # ------------------------------------------------------------------
    # Control endpoint (cluster-wide /metrics + /healthz)
    # ------------------------------------------------------------------

    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One-shot HTTP: parse a request, answer JSON, close."""
        try:
            try:
                header_blob = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), 5.0
                )
                method, path, _headers = _parse_head(header_blob)
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                asyncio.TimeoutError,
                ConnectionResetError,
                ValueError,
            ):
                return
            if method != "GET":
                status, payload = 405, {"error": "GET required"}
            elif path == "/metrics":
                status, payload = 200, await self.metrics()
            elif path == "/healthz":
                status, payload = 200, self.health()
            else:
                status, payload = 404, {"error": f"no route {path}"}
            body = json.dumps(payload, separators=(",", ":")).encode()
            reason = {200: b"OK", 404: b"Not Found", 405: b"Method Not Allowed"}
            writer.write(
                b"HTTP/1.1 %d %s\r\n" % (status, reason[status])
                + b"Content-Type: application/json\r\n"
                + b"Content-Length: %d\r\n" % len(body)
                + b"Connection: close\r\n\r\n"
                + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
