"""Async client for the decision service.

One keep-alive HTTP/1.1 connection per client instance — the shape a
player integration would use (one control connection per stream
session), and what the load generator multiplies to model concurrency.
Requests carry a client-side deadline; a dead connection is re-dialed
once per call before the error propagates.

On top of the per-exchange deadline sits an optional
:class:`RetryPolicy`: bounded attempts with exponential backoff and
seeded jitter, all under one overall time budget, so a flaky server
(resets, 5xx, slow-loris) is ridden out without ever stalling the
caller indefinitely.  Seeded jitter keeps chaos runs replayable.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Optional, Tuple, TypeVar, Union

from ..core.table import DecisionTable
from .protocol import (
    CONTENT_TYPE_BINARY,
    DecisionRequest,
    DecisionResponse,
    ProtocolError,
    decode_response_batch,
    encode_request_batch,
)

__all__ = ["RetryPolicy", "ServiceClient", "DecisionClient", "ServiceUnavailable"]

_T = TypeVar("_T")


class ServiceUnavailable(ConnectionError):
    """The server could not be reached or answered unparseably."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff under a time budget.

    Attempt ``n`` (0-based) that fails waits
    ``min(base_delay_s * multiplier**n, max_delay_s)``, shrunk by up to
    ``jitter`` (a fraction in [0, 1]) with a seeded RNG — deterministic
    for a fixed seed, which chaos tests rely on.  No retry ever starts
    if its backoff would overrun ``budget_s`` measured from the first
    attempt: the caller is guaranteed an answer or an error within the
    budget plus one request deadline.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.5
    budget_s: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.base_delay_s <= 0 or self.max_delay_s <= 0:
            raise ValueError("backoff delays must be positive")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget_s <= 0:
            raise ValueError("retry budget must be positive")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """The jittered wait after 0-based ``attempt`` failed."""
        delay = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        return delay * (1.0 - self.jitter * rng.random())


class ServiceClient:
    """Keep-alive asyncio client speaking the decision protocol.

    Usable as an async context manager::

        async with ServiceClient("127.0.0.1", 8008) as client:
            response = await client.decide(request)

    ``protocol`` selects the wire encoding for ``/v1/decide``:
    ``"json"`` (default) or ``"binary"`` — the struct-packed fast path,
    which also unlocks :meth:`decide_many` batching one HTTP exchange
    over many decisions.  Negotiation is per connection and implicit: a
    binary client simply POSTs binary; if the server answers JSON (a
    pre-binary server), the client downgrades itself to JSON and resends
    once — so ``protocol="binary"`` is always safe to request.
    """

    def __init__(
        self,
        host: str,
        port: int,
        deadline_s: float = 2.0,
        retry: Optional[RetryPolicy] = None,
        protocol: str = "json",
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if protocol not in ("json", "binary"):
            raise ValueError(f"unknown protocol {protocol!r}")
        self.host = host
        self.port = port
        self.deadline_s = deadline_s
        self.retry = retry
        self.protocol = protocol
        self._retry_rng = random.Random(retry.seed) if retry is not None else None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._last_content_type: str = ""

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def connect(self) -> None:
        if self.connected:
            return
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.deadline_s
            )
        except (OSError, asyncio.TimeoutError) as exc:
            self._reader = self._writer = None
            raise ServiceUnavailable(
                f"cannot reach {self.host}:{self.port}: {exc}"
            ) from None

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._reader = self._writer = None

    # ------------------------------------------------------------------

    async def _request_once(
        self, method: str, path: str, body: bytes, content_type: str = ""
    ) -> Tuple[int, bytes]:
        assert self._reader is not None and self._writer is not None
        type_header = f"Content-Type: {content_type}\r\n" if content_type else ""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"{type_header}"
            f"Content-Length: {len(body)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode()
        self._writer.write(head + body)
        await self._writer.drain()
        header_blob = await self._reader.readuntil(b"\r\n\r\n")
        lines = header_blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        length = 0
        close_after = False
        response_type = ""
        for line in lines[1:]:
            name, _, value = line.partition(":")
            key = name.strip().lower()
            if key == "content-length":
                length = int(value.strip())
            elif key == "content-type":
                response_type = value.strip()
            elif key == "connection" and value.strip().lower() == "close":
                close_after = True
        payload = await self._reader.readexactly(length) if length else b""
        # Stashed rather than returned: requests on one client are
        # serialized, and only the decide paths consult it (to detect a
        # JSON answer to a binary request — the downgrade signal).
        self._last_content_type = response_type
        if close_after:
            await self.close()
        return status, payload

    async def _request_with_redial(
        self, method: str, path: str, body: bytes = b"", content_type: str = ""
    ) -> Tuple[int, bytes]:
        """One HTTP exchange under the client deadline.

        The deadline is enforced by a ``loop.call_later`` handle that
        aborts the connection — far cheaper per request than wrapping
        every exchange in :func:`asyncio.wait_for`, which spawns a task.
        Retries exactly once on a dead keep-alive connection (the server
        may have reaped an idle one) — never on a deadline, so a slow
        server cannot double the configured wait.
        """
        loop = asyncio.get_running_loop()
        last_error: Optional[BaseException] = None
        for attempt in range(2):
            await self.connect()
            writer = self._writer
            timed_out = False

            def _abort(w=writer) -> None:
                nonlocal timed_out
                timed_out = True
                w.close()

            deadline_handle = loop.call_later(self.deadline_s, _abort)
            try:
                return await self._request_once(method, path, body, content_type)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
                ValueError,
                OSError,
            ) as exc:
                await self.close()
                if timed_out:
                    raise ServiceUnavailable(
                        f"no response from {self.host}:{self.port} "
                        f"within {self.deadline_s}s"
                    ) from None
                last_error = exc
            finally:
                deadline_handle.cancel()
        raise ServiceUnavailable(f"retry failed: {last_error}") from None

    async def _with_retry(
        self, op: Callable[[], Awaitable[_T]]
    ) -> _T:
        """Run ``op`` under the client's :class:`RetryPolicy` (if any).

        Each failed attempt backs off exponentially with seeded jitter;
        a retry whose backoff would overrun the overall budget is not
        attempted — the last error propagates instead.
        """
        if self.retry is None:
            return await op()
        policy = self.retry
        assert self._retry_rng is not None
        loop = asyncio.get_running_loop()
        started = loop.time()
        last_error: Optional[ServiceUnavailable] = None
        attempts = 0
        for attempt in range(policy.max_attempts):
            attempts += 1
            try:
                return await op()
            except ServiceUnavailable as exc:
                last_error = exc
                if attempt + 1 >= policy.max_attempts:
                    break
                delay = policy.backoff_s(attempt, self._retry_rng)
                if loop.time() - started + delay > policy.budget_s:
                    break  # the budget is an overall deadline, not per-try
                await asyncio.sleep(delay)
        raise ServiceUnavailable(
            f"gave up after {attempts} attempt(s): {last_error}"
        ) from None

    async def request(
        self, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, bytes]:
        """One HTTP exchange, retried per the client's retry policy."""
        return await self._with_retry(
            lambda: self._request_with_redial(method, path, body)
        )

    # ------------------------------------------------------------------
    # Protocol-level calls
    # ------------------------------------------------------------------

    async def _decide_once(self, request: DecisionRequest) -> DecisionResponse:
        if self.protocol == "binary":
            status, body = await self._request_with_redial(
                "POST", "/v1/decide", request.to_binary(), CONTENT_TYPE_BINARY
            )
            if status != 200:
                raise ServiceUnavailable(
                    f"decide returned HTTP {status}: {body!r}"
                )
            if self._last_content_type == CONTENT_TYPE_BINARY:
                try:
                    return DecisionResponse.from_binary(body)
                except ProtocolError as exc:
                    raise ServiceUnavailable(str(exc)) from None
            # The server answered JSON: it predates the binary protocol.
            # Downgrade this client and resend the request as JSON.
            self.protocol = "json"
        status, body = await self._request_with_redial(
            "POST", "/v1/decide", request.to_json()
        )
        if status != 200:
            raise ServiceUnavailable(f"decide returned HTTP {status}: {body!r}")
        try:
            return DecisionResponse.from_json(body)
        except ProtocolError as exc:
            raise ServiceUnavailable(str(exc)) from None

    async def _decide_many_once(self, requests) -> list:
        if self.protocol == "binary":
            status, body = await self._request_with_redial(
                "POST",
                "/v1/decide",
                encode_request_batch(requests),
                CONTENT_TYPE_BINARY,
            )
            if status != 200:
                raise ServiceUnavailable(
                    f"decide returned HTTP {status}: {body!r}"
                )
            if self._last_content_type == CONTENT_TYPE_BINARY:
                try:
                    responses = decode_response_batch(body)
                except ProtocolError as exc:
                    raise ServiceUnavailable(str(exc)) from None
                if len(responses) != len(requests):
                    raise ServiceUnavailable(
                        f"{len(responses)} responses for {len(requests)} requests"
                    )
                return responses
            self.protocol = "json"  # downgrade, then fall through
        return [await self._decide_once(request) for request in requests]

    async def decide(self, request: DecisionRequest) -> DecisionResponse:
        """One bitrate decision; raises :class:`ServiceUnavailable` only
        after transport failures and 5xx answers exhaust the retry
        policy — degraded answers come back normally.

        Unlike the generic :meth:`request`, retries here cover the whole
        exchange including HTTP-level failures (an injected 500 is as
        retryable as a reset), which is what lets a player ride out a
        flaky decision backend.
        """
        return await self._with_retry(lambda: self._decide_once(request))

    async def decide_many(self, requests) -> list:
        """Decide a whole batch in one exchange (binary protocol).

        Under ``protocol="binary"`` the batch rides a single multi-record
        frame and one HTTP round-trip — the client-side half of the
        service's micro-batching, and the shape the load generator uses
        to amortise per-exchange costs.  Under JSON (or after a
        negotiation downgrade) the batch degrades to sequential single
        exchanges on the keep-alive connection; either way responses come
        back in request order with identical decision semantics.
        """
        requests = list(requests)
        if not requests:
            return []
        return await self._with_retry(lambda: self._decide_many_once(requests))

    async def metrics(self) -> dict:
        status, body = await self.request("GET", "/metrics")
        if status != 200:
            raise ServiceUnavailable(f"metrics returned HTTP {status}")
        return json.loads(body)

    async def health(self) -> dict:
        status, body = await self.request("GET", "/healthz")
        if status != 200:
            raise ServiceUnavailable(f"healthz returned HTTP {status}")
        return json.loads(body)

    async def swap_table(self, table: Union[DecisionTable, bytes]) -> dict:
        """Install a new table on the server (warm swap)."""
        blob = table.to_bytes() if isinstance(table, DecisionTable) else table
        status, body = await self.request("POST", "/v1/table", blob)
        payload = json.loads(body) if body else {}
        if status != 200:
            raise ServiceUnavailable(
                f"table swap rejected: HTTP {status} {payload.get('error', '')}"
            )
        return payload

    async def get_experiment(self) -> Optional[dict]:
        """The server's active A/B config, or ``None`` when unset."""
        status, body = await self.request("GET", "/v1/experiment")
        if status != 200:
            raise ServiceUnavailable(f"experiment read returned HTTP {status}")
        return json.loads(body).get("experiment")

    async def set_experiment(self, experiment: Optional[dict]) -> Optional[dict]:
        """Install (a dict per ``ExperimentConfig.to_dict``) or clear
        (``None``) the server's A/B config; returns what is now active."""
        blob = json.dumps(experiment).encode() if experiment is not None else b""
        status, body = await self.request("POST", "/v1/experiment", blob)
        payload = json.loads(body) if body else {}
        if status != 200:
            raise ServiceUnavailable(
                f"experiment rejected: HTTP {status} {payload.get('error', '')}"
            )
        return payload.get("experiment")


#: The name the service docs use for the player-facing client; the
#: transport object is the same either way.
DecisionClient = ServiceClient
