"""The asyncio ABR decision server.

Two layers, deliberately separated:

* :class:`DecisionService` — transport-free decision logic.  Holds the
  active :class:`~repro.core.table.DecisionTable` and the bitrate
  ladder, answers one :class:`~repro.service.protocol.DecisionRequest`
  per call, and implements the degradation policy: whenever a healthy
  table lookup is impossible (no table loaded, malformed request) or
  too slow (over the per-lookup budget), it serves the paper's
  rate-based rule — max ladder rate at most the predicted throughput —
  and flags the response ``degraded`` with a reason.  A response is
  always produced; clients never see an exception for a recoverable
  condition.

* :class:`DecisionServer` — a stdlib-only HTTP/1.1 front end over
  ``asyncio.start_server`` with keep-alive connections, per-request
  read deadlines, and warm/cold table swapping: ``POST /v1/table``
  installs a new table between requests with one reference assignment,
  so in-flight connections keep streaming decisions and never drop.

The single-threaded event loop is what makes the swap trivially safe:
``decide`` captures the table reference once per request, and the
reference flip happens between callbacks, never during one.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, replace
from struct import error as struct_error
from typing import Callable, Optional, Sequence, Tuple

from ..core.table import DecisionTable
from ..obs.events import RequestSpan, SolverCall
from ..obs.tracer import Tracer
from ..faults.chaos import (
    CHAOS_ERROR,
    CHAOS_KILL,
    CHAOS_NONE,
    CHAOS_RESET,
    CHAOS_SLOW,
    CHAOS_TABLE_SWAP,
    ChaosPolicy,
)
from ..video.manifest import BitrateLadder
from .backends import AlgorithmBackend
from .experiment import CONTROLLER_TABLE, ExperimentArm, ExperimentConfig
from .metrics import ServiceMetrics
from .prior import SharedPriorStore
from .protocol import (
    CONTENT_TYPE_BINARY,
    PROTOCOL_VERSION,
    SOURCE_CONTROLLER,
    SOURCE_FALLBACK,
    SOURCE_TABLE,
    DecisionRequest,
    DecisionResponse,
    ProtocolError,
    decode_request_batch,
    encode_response_batch,
)

__all__ = ["ServiceConfig", "DecisionService", "DecisionServer"]

#: Degradation reasons carried in responses and counted in /metrics.
REASON_NO_TABLE = "no-table"
REASON_MALFORMED = "malformed"
REASON_OVER_BUDGET = "over-budget"

#: Batches under this size are answered by the scalar decide path —
#: the vectorized lookup's fixed per-call array overhead only pays for
#: itself past a few dozen requests (see DecisionService.decide_batch).
VECTOR_MIN_BATCH = 64


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs of the decision service.

    ``lookup_budget_s`` bounds the time the table path may take before
    the response is downgraded to the rate-based fallback — the service
    promises a decision in bounded time even if a pathological table or
    a cold page makes the lookup slow.  ``request_deadline_s`` bounds
    how long the server waits for a request to arrive in full on an
    open connection before giving up on it; ``idle_timeout_s`` reaps
    keep-alive connections that have gone quiet.

    The ``backend_*`` knobs shape the stateful controller backends that
    serve non-table experiment arms: how many live sessions a backend
    holds before LRU eviction, how long a session may idle before the
    reap watchdog retires it, and the synthetic CBR manifest (chunk
    duration, buffer cap) the controllers are prepared against.
    """

    lookup_budget_s: float = 0.005
    request_deadline_s: float = 5.0
    idle_timeout_s: float = 60.0
    max_body_bytes: int = 64 * 1024
    max_table_bytes: int = 64 * 1024 * 1024
    backend_max_sessions: int = 4096
    backend_idle_timeout_s: float = 300.0
    backend_chunk_duration_s: float = 4.0
    backend_buffer_capacity_s: float = 30.0
    #: Trace families the shared prior store holds before LRU eviction.
    prior_max_families: int = 1024

    def __post_init__(self) -> None:
        if self.lookup_budget_s <= 0:
            raise ValueError("lookup budget must be positive")
        if self.request_deadline_s <= 0 or self.idle_timeout_s <= 0:
            raise ValueError("deadlines must be positive")
        if self.max_body_bytes < 1 or self.max_table_bytes < 1:
            raise ValueError("body limits must be positive")
        if self.backend_max_sessions < 1:
            raise ValueError("backend_max_sessions must be positive")
        if (
            self.backend_idle_timeout_s <= 0
            or self.backend_chunk_duration_s <= 0
            or self.backend_buffer_capacity_s <= 0
        ):
            raise ValueError("backend timings must be positive")
        if self.prior_max_families < 1:
            raise ValueError("prior_max_families must be positive")


class DecisionService:
    """Decision logic + degradation policy, independent of any transport.

    Parameters
    ----------
    ladder_kbps:
        The bitrate ladder decisions index into.  Required even without
        a table — the fallback path is the rate-based rule over this
        ladder.
    table:
        The active decision table, or ``None`` for a cold start (every
        decision degrades to the fallback until a table is swapped in).
    config:
        Budgets and limits; see :class:`ServiceConfig`.
    metrics:
        Telemetry sink; a fresh :class:`ServiceMetrics` by default.
    clock:
        Monotonic time source (injectable for budget tests).
    experiment:
        Optional A/B routing config (see
        :class:`~repro.service.experiment.ExperimentConfig`): every
        session is deterministically assigned to one arm, and arms on a
        controller other than :data:`CONTROLLER_TABLE` are answered by a
        stateful :class:`~repro.service.backends.AlgorithmBackend`
        instead of the table.
    """

    def __init__(
        self,
        ladder_kbps: Sequence[float],
        table: Optional[DecisionTable] = None,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
        clock: Callable[[], float] = time.perf_counter,
        experiment: Optional[ExperimentConfig] = None,
    ) -> None:
        self.ladder = BitrateLadder(ladder_kbps)
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: Cross-session throughput prior, keyed by trace family (see
        #: :mod:`repro.service.prior`); fed by requests that carry a
        #: ``family`` and served back as ``prior_kbps`` on the response.
        self.priors = SharedPriorStore(max_families=self.config.prior_max_families)
        self.clock = clock
        self._table: Optional[DecisionTable] = None
        self._experiment: Optional[ExperimentConfig] = None
        self._backends: dict = {}  # controller name -> AlgorithmBackend
        if table is not None:
            self._install(table)
        if experiment is not None:
            self.set_experiment(experiment)

    # ------------------------------------------------------------------
    # Table lifecycle
    # ------------------------------------------------------------------

    def _install(self, table: DecisionTable) -> None:
        if table.num_levels != len(self.ladder):
            raise ValueError(
                f"table has {table.num_levels} levels but the ladder has "
                f"{len(self.ladder)}"
            )
        self._table = table

    @property
    def table(self) -> Optional[DecisionTable]:
        return self._table

    @property
    def table_loaded(self) -> bool:
        return self._table is not None

    def swap_table(self, table: DecisionTable) -> None:
        """Atomically replace the active table (warm swap).

        One reference assignment on the event-loop thread: requests
        already past their table capture finish on the old table, the
        next request sees the new one.  No connection is touched.
        """
        self._install(table)
        self.metrics.record_table_swap()

    def unload_table(self) -> None:
        """Drop the active table (cold mode; used by drain/tests)."""
        self._table = None
        self.metrics.record_table_swap()

    # ------------------------------------------------------------------
    # Experiment / controller-backend lifecycle
    # ------------------------------------------------------------------

    @property
    def experiment(self) -> Optional[ExperimentConfig]:
        return self._experiment

    def set_experiment(self, experiment: Optional[ExperimentConfig]) -> None:
        """Install (or clear, with ``None``) the A/B routing config.

        Backends for every non-table arm are built eagerly so an unknown
        controller name fails *here* — at configuration time — rather
        than degrading live traffic.  A backend serving a controller the
        new config still names is kept, sessions and all; like a table
        swap, re-configuring never touches unrelated in-flight state.
        """
        if experiment is None:
            self._experiment = None
            self._backends = {}
            return
        backends = {}
        for arm in experiment.arms:
            controller = arm.controller
            if controller == CONTROLLER_TABLE or controller in backends:
                continue
            backend = self._backends.get(controller)
            if backend is None:
                backend = AlgorithmBackend(
                    controller,
                    tuple(self.ladder),
                    chunk_duration_s=self.config.backend_chunk_duration_s,
                    buffer_capacity_s=self.config.backend_buffer_capacity_s,
                    max_sessions=self.config.backend_max_sessions,
                    idle_timeout_s=self.config.backend_idle_timeout_s,
                )
            backends[controller] = backend
        self._experiment = experiment
        self._backends = backends

    @property
    def backends(self) -> dict:
        """Live controller backends, keyed by controller name."""
        return dict(self._backends)

    def assign_arm(self, session_id: str) -> Optional[ExperimentArm]:
        """This session's experiment arm (``None`` when no experiment)."""
        experiment = self._experiment
        return experiment.assign(session_id) if experiment is not None else None

    def evict_idle_backends(self) -> int:
        """Reap idle backend sessions across all arms (watchdog hook)."""
        return sum(backend.evict_idle() for backend in self._backends.values())

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _fallback(
        self,
        session_id: str,
        predicted_kbps: Optional[float],
        reason: str,
        started: float,
        arm: Optional[str] = None,
    ) -> DecisionResponse:
        if predicted_kbps is not None and predicted_kbps > 0:
            level = self.ladder.highest_at_most(predicted_kbps)
        else:
            level = 0  # nothing usable in the request: safest rate
        latency_us = (self.clock() - started) * 1e6
        response = DecisionResponse(
            session_id=session_id,
            level_index=level,
            bitrate_kbps=self.ladder[level],
            source=SOURCE_FALLBACK,
            degraded=True,
            reason=reason,
            server_latency_us=latency_us,
            arm=arm,
        )
        self.metrics.record_decision(
            SOURCE_FALLBACK, latency_us, True, reason, session_id, arm
        )
        return response

    def decide(self, request: DecisionRequest) -> DecisionResponse:
        """Answer one well-formed request; never raises.

        With an experiment installed the session's arm picks the path:
        table arms run the mmap lookup below, controller arms run their
        stateful backend.  Both inherit the same degradation policy —
        any failure or budget overrun falls back to the rate-based rule,
        still labelled with the session's arm.
        """
        started = self.clock()
        arm = self.assign_arm(request.session_id)
        if arm is not None and arm.controller != CONTROLLER_TABLE:
            return self._apply_prior(request, self._decide_controller(request, arm, started))
        return self._apply_prior(request, self._decide_table(request, arm, started))

    def _apply_prior(
        self, request: DecisionRequest, response: DecisionResponse
    ) -> DecisionResponse:
        """Fold a family-keyed request into the shared prior store.

        The estimate is read *before* the request's own sample is
        folded in, so the response carries the pooled view of the
        family's earlier sessions — ``None`` for the family's very
        first request.  Requests without a family pass through
        untouched (the common path stays allocation-free).
        """
        if request.family is None:
            return response
        prior = self.priors.estimate(request.family)
        self.priors.observe(request.family, request.predicted_kbps)
        if prior is None:
            return response
        return replace(response, prior_kbps=prior)

    def _decide_table(
        self,
        request: DecisionRequest,
        arm: Optional[ExperimentArm],
        started: float,
    ) -> DecisionResponse:
        arm_name = arm.name if arm is not None else None
        table = self._table  # captured once; swaps cannot tear a request
        if table is None:
            return self._fallback(
                request.session_id,
                request.predicted_kbps,
                REASON_NO_TABLE,
                started,
                arm_name,
            )
        query_kbps = request.predicted_kbps
        if request.past_errors:
            # RobustMPC's lower bound C_hat / (1 + err) — valid on the
            # table because its throughput axis is the MPC input.
            err = max(abs(e) for e in request.past_errors)
            query_kbps = query_kbps / (1.0 + err)
        prev = request.prev_level if request.prev_level is not None else 0
        try:
            level = table.lookup(request.buffer_s, prev, query_kbps)
        except (IndexError, ValueError):
            # e.g. prev_level beyond the ladder: recoverable, not fatal.
            return self._fallback(
                request.session_id,
                request.predicted_kbps,
                REASON_MALFORMED,
                started,
                arm_name,
            )
        elapsed = self.clock() - started
        if elapsed > self.config.lookup_budget_s:
            return self._fallback(
                request.session_id,
                request.predicted_kbps,
                REASON_OVER_BUDGET,
                started,
                arm_name,
            )
        latency_us = elapsed * 1e6
        response = DecisionResponse(
            session_id=request.session_id,
            level_index=level,
            bitrate_kbps=self.ladder[level],
            source=SOURCE_TABLE,
            degraded=False,
            reason=None,
            server_latency_us=latency_us,
            arm=arm_name,
        )
        self.metrics.record_decision(
            SOURCE_TABLE, latency_us, False, None, request.session_id, arm_name
        )
        return response

    def _decide_controller(
        self,
        request: DecisionRequest,
        arm: ExperimentArm,
        started: float,
    ) -> DecisionResponse:
        """One decision from the arm's stateful controller backend."""
        backend = self._backends[arm.controller]
        try:
            level = backend.decide(
                request.session_id,
                request.buffer_s,
                request.prev_level,
                request.predicted_kbps,
            )
        except Exception:
            # A controller bug must degrade this request, never crash
            # the service — same promise the table path makes.
            return self._fallback(
                request.session_id,
                request.predicted_kbps,
                REASON_MALFORMED,
                started,
                arm.name,
            )
        elapsed = self.clock() - started
        if elapsed > self.config.lookup_budget_s:
            return self._fallback(
                request.session_id,
                request.predicted_kbps,
                REASON_OVER_BUDGET,
                started,
                arm.name,
            )
        latency_us = elapsed * 1e6
        response = DecisionResponse(
            session_id=request.session_id,
            level_index=level,
            bitrate_kbps=self.ladder[level],
            source=SOURCE_CONTROLLER,
            degraded=False,
            reason=None,
            server_latency_us=latency_us,
            arm=arm.name,
        )
        self.metrics.record_decision(
            SOURCE_CONTROLLER, latency_us, False, None, request.session_id, arm.name
        )
        return response

    def decide_batch(
        self, requests: Sequence[DecisionRequest]
    ) -> Tuple[DecisionResponse, ...]:
        """Answer a batch of requests with one vectorized table lookup.

        Decision *content* (level, source, degraded, reason) is identical
        to calling :meth:`decide` per request — the batch path shares the
        scalar path's bin arithmetic and run search, and per-request
        validation (a ``prev_level`` beyond the ladder) degrades just
        that request.  Two intended differences: the lookup budget is
        judged on the whole batch's elapsed time (a batch of one behaves
        exactly like :meth:`decide`), and reported latencies are the
        batch's, not a per-request measurement.  Batch occupancy is
        recorded in ``/metrics``.

        Small batches are answered by the scalar path: the vectorized
        lookup carries a fixed ~60 us of array-call overhead per batch,
        which beats a loop of ~5 us scalar decides only past a few dozen
        requests (measured crossover ~64 on a 1-core host).

        With an experiment installed the batch is partitioned by arm:
        controller-armed requests run their stateful backends one by one
        (backends are sequential by nature), while the table-armed
        remainder keeps the vectorized lookup — so A/B routing does not
        tax the fast path of the sessions still on the table.
        """
        started = self.clock()
        self.metrics.record_batch(len(requests))
        if self._experiment is None:
            return self._finish_batch(requests, self._decide_batch_table(requests, None, started))
        arms = [self.assign_arm(r.session_id) for r in requests]
        responses: list = [None] * len(requests)
        table_rows = []
        for i, (request, arm) in enumerate(zip(requests, arms)):
            if arm is not None and arm.controller != CONTROLLER_TABLE:
                responses[i] = self._decide_controller(request, arm, self.clock())
            else:
                table_rows.append(i)
        if table_rows:
            table_responses = self._decide_batch_table(
                [requests[i] for i in table_rows],
                [arms[i] for i in table_rows],
                started,
            )
            for i, response in zip(table_rows, table_responses):
                responses[i] = response
        return self._finish_batch(requests, tuple(responses))

    def _finish_batch(
        self,
        requests: Sequence[DecisionRequest],
        responses: Tuple[DecisionResponse, ...],
    ) -> Tuple[DecisionResponse, ...]:
        """Apply the shared prior to a batch, in request order — the same
        estimate-before-observe sequence scalar :meth:`decide` calls
        would have produced one by one."""
        if all(r.family is None for r in requests):
            return responses
        return tuple(
            self._apply_prior(request, response)
            for request, response in zip(requests, responses)
        )

    def _decide_batch_table(
        self,
        requests: Sequence[DecisionRequest],
        arms: Optional[Sequence[Optional[ExperimentArm]]],
        started: float,
    ) -> Tuple[DecisionResponse, ...]:
        arm_names = (
            [a.name if a is not None else None for a in arms]
            if arms is not None
            else [None] * len(requests)
        )
        table = self._table  # captured once; swaps cannot tear a batch
        if len(requests) < VECTOR_MIN_BATCH:
            if arms is None:
                arms = [None] * len(requests)
            return tuple(
                self._decide_table(r, arm, self.clock())
                for r, arm in zip(requests, arms)
            )
        if table is None:
            return tuple(
                self._fallback(
                    r.session_id, r.predicted_kbps, REASON_NO_TABLE, started, name
                )
                for r, name in zip(requests, arm_names)
            )
        num_levels = table.num_levels
        rows = []  # per request: index into the batch arrays, -1 = malformed
        buffers: list = []
        prevs: list = []
        queries: list = []
        for request in requests:
            query_kbps = request.predicted_kbps
            if request.past_errors:
                err = max(abs(e) for e in request.past_errors)
                query_kbps = query_kbps / (1.0 + err)
            prev = request.prev_level if request.prev_level is not None else 0
            if not 0 <= prev < num_levels:
                rows.append(-1)
                continue
            rows.append(len(buffers))
            buffers.append(request.buffer_s)
            prevs.append(prev)
            queries.append(query_kbps)
        if buffers:
            try:
                levels = table.lookup_batch(buffers, prevs, queries)
            except (IndexError, ValueError):
                # A poisoned value (e.g. NaN) the scalar path degrades per
                # request; re-run scalar so only the bad entries degrade.
                if arms is None:
                    arms = [None] * len(requests)
                return tuple(
                    self._decide_table(r, arm, self.clock())
                    for r, arm in zip(requests, arms)
                )
        else:
            levels = []
        elapsed = self.clock() - started
        over_budget = elapsed > self.config.lookup_budget_s
        latency_us = elapsed * 1e6
        responses = []
        for request, row, arm_name in zip(requests, rows, arm_names):
            if row < 0:
                responses.append(
                    self._fallback(
                        request.session_id,
                        request.predicted_kbps,
                        REASON_MALFORMED,
                        started,
                        arm_name,
                    )
                )
            elif over_budget:
                responses.append(
                    self._fallback(
                        request.session_id,
                        request.predicted_kbps,
                        REASON_OVER_BUDGET,
                        started,
                        arm_name,
                    )
                )
            else:
                level = int(levels[row])
                response = DecisionResponse(
                    session_id=request.session_id,
                    level_index=level,
                    bitrate_kbps=self.ladder[level],
                    source=SOURCE_TABLE,
                    degraded=False,
                    reason=None,
                    server_latency_us=latency_us,
                    arm=arm_name,
                )
                self.metrics.record_decision(
                    SOURCE_TABLE, latency_us, False, None, request.session_id, arm_name
                )
                responses.append(response)
        return tuple(responses)

    def metrics_document(self) -> dict:
        """The full ``/metrics`` JSON document: the counter/histogram
        snapshot plus the shared-prior section (kept out of
        :meth:`ServiceMetrics.snapshot` so the metrics schema stays
        mergeable on its own)."""
        document = self.metrics.snapshot()
        document["priors"] = self.priors.snapshot()
        return document

    def fallback_response(
        self,
        session_id: str,
        predicted_kbps: Optional[float],
        reason: str,
    ) -> DecisionResponse:
        """A degraded fallback decision for an unservable request —
        what the transport answers when it cannot even parse a frame."""
        return self._fallback(session_id, predicted_kbps, reason, self.clock())

    def decide_payload(self, body: bytes) -> DecisionResponse:
        """Decide from a raw request body; malformed input degrades.

        A body that fails protocol validation still gets a response: the
        fallback decision computed from whatever fields are salvageable
        (``session_id`` and ``predicted_kbps`` when present), flagged
        ``degraded`` with reason ``malformed``.
        """
        try:
            request = DecisionRequest.from_json(body)
        except ProtocolError:
            session_id, predicted = _salvage(body)
            return self._fallback(
                session_id, predicted, REASON_MALFORMED, self.clock()
            )
        return self.decide(request)


def _salvage(body: bytes) -> Tuple[str, Optional[float]]:
    """Best-effort ``(session_id, predicted_kbps)`` from a bad payload."""
    try:
        payload = json.loads(body)
    except (ValueError, UnicodeDecodeError):
        return "unknown", None
    if not isinstance(payload, dict):
        return "unknown", None
    session_id = payload.get("session_id")
    if not isinstance(session_id, str) or not session_id:
        session_id = "unknown"
    predicted = payload.get("predicted_kbps")
    if isinstance(predicted, bool) or not isinstance(predicted, (int, float)):
        predicted = None
    elif not (predicted > 0 and predicted == predicted and predicted != float("inf")):
        predicted = None
    return session_id, float(predicted) if predicted is not None else None


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------

_JSON_HEADERS = b"Content-Type: application/json\r\n"
_BINARY_HEADERS = b"Content-Type: " + CONTENT_TYPE_BINARY.encode() + b"\r\n"
_STATUS_LINES = {
    200: b"HTTP/1.1 200 OK\r\n",
    400: b"HTTP/1.1 400 Bad Request\r\n",
    404: b"HTTP/1.1 404 Not Found\r\n",
    405: b"HTTP/1.1 405 Method Not Allowed\r\n",
    413: b"HTTP/1.1 413 Payload Too Large\r\n",
    500: b"HTTP/1.1 500 Internal Server Error\r\n",
}


class DecisionServer:
    """Stdlib asyncio HTTP/1.1 server around a :class:`DecisionService`.

    Routes
    ------
    - ``POST /v1/decide``      one decision per request body
    - ``GET  /metrics``        telemetry snapshot (JSON)
    - ``GET  /healthz``        liveness + table status
    - ``POST /v1/table``       warm/cold table swap (serialized table body)
    - ``GET/POST /v1/experiment``  read / install / clear the A/B config

    Connections are keep-alive by default; a request whose headers or
    body do not arrive within ``request_deadline_s`` closes only that
    connection.  The server binds with ``port=0`` for an ephemeral port
    (see :attr:`bound_port`).

    ``chaos`` hands the server an injected misbehaviour source (see
    :mod:`repro.faults.chaos`): the policy is consulted once per
    ``/v1/decide`` request and the drawn action — connection reset,
    HTTP 500, slow-loris delay, or a mid-flight table swap — is applied
    through the server's own code paths, never by monkeypatching.  Every
    injection is counted under ``chaos_injected`` in ``/metrics``.

    ``tracer`` streams one :class:`repro.obs.RequestSpan` per request
    through the observability layer; independent of the tracer, every
    span is folded into the ``spans_us`` histograms of ``/metrics``.
    Each ``/v1/decide`` request gets a server-assigned trace id, and a
    drawn chaos action is stamped onto the request's span, making chaos
    runs attributable request by request.

    Cluster integration (see :mod:`repro.service.cluster`):
    ``reuse_port`` binds with ``SO_REUSEPORT`` so N worker processes can
    listen on one shared port and let the kernel spread connections;
    ``worker_id`` stamps every request span and ``/healthz`` document
    with the worker's index; ``kill_hook`` is what the ``worker-kill``
    chaos action calls after aborting the connection — a cluster worker
    installs ``os._exit`` there, so the injected crash is a real process
    death the supervisor must repair (with no hook the action only
    aborts the connection).
    """

    def __init__(
        self,
        service: DecisionService,
        host: str = "127.0.0.1",
        port: int = 0,
        chaos: Optional[ChaosPolicy] = None,
        tracer: Optional[Tracer] = None,
        reuse_port: bool = False,
        worker_id: Optional[int] = None,
        kill_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.chaos = chaos
        self.tracer = tracer
        self.reuse_port = reuse_port
        self.worker_id = worker_id
        self.kill_hook = kill_hook
        self._trace_seq = 0
        self._stashed_table: Optional[DecisionTable] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        # Micro-batching state: decisions queued by concurrent handler
        # tasks, flushed once per event-loop tick (see _decide_coalesced).
        self._batch_pending: list = []
        self._batch_scheduled = False
        self._backend_reaper: Optional[asyncio.TimerHandle] = None

    # ------------------------------------------------------------------

    async def start(self) -> None:
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        # Idle backend sessions are reaped on a timer, same rescheduling
        # pattern as the per-connection watchdog: one call_later per
        # window, zero per-request cost.
        loop = asyncio.get_running_loop()
        interval = self.service.config.backend_idle_timeout_s / 2

        def _reap_backends() -> None:
            self.service.evict_idle_backends()
            self._backend_reaper = loop.call_later(interval, _reap_backends)

        self._backend_reaper = loop.call_later(interval, _reap_backends)

    @property
    def bound_port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop listening and tear down every open connection."""
        if self._backend_reaper is not None:
            self._backend_reaper.cancel()
            self._backend_reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = self.service.metrics
        config = self.service.config
        metrics.connections_opened += 1
        metrics.connections_active += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        # Idle reaping via a rescheduled timer instead of wrapping every
        # read in asyncio.wait_for: wait_for spawns a Task per call, which
        # profiles as ~20% of the whole request path at load.  The timer
        # costs one call_later per timeout window, not per request.
        loop = asyncio.get_running_loop()
        last_active = loop.time()

        def _reap() -> None:
            nonlocal watchdog
            idle = loop.time() - last_active
            if idle >= config.idle_timeout_s:
                writer.close()  # wakes any pending read with EOF/reset
            else:
                watchdog = loop.call_later(config.idle_timeout_s - idle, _reap)

        watchdog = loop.call_later(config.idle_timeout_s, _reap)
        try:
            while True:
                try:
                    header_blob = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    BrokenPipeError,
                ):
                    break  # peer went away or idled out: normal teardown
                except asyncio.LimitOverrunError:
                    metrics.record_error()
                    await self._respond(
                        writer, 400, {"error": "headers too large"}, close=True
                    )
                    break
                try:
                    keep_alive = await self._handle_request(
                        reader, writer, header_blob
                    )
                except (ConnectionResetError, BrokenPipeError, OSError):
                    # Peer reset between headers and body (or while we were
                    # writing the response): close this connection cleanly
                    # and count it — an exception here must never tear down
                    # the handler task uncounted.
                    metrics.record_disconnect()
                    break
                last_active = loop.time()
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # Server shutdown cancels handlers mid-read; ending the task
            # *uncancelled* after cleanup keeps the streams machinery from
            # logging a spurious "exception never retrieved".
            pass
        finally:
            watchdog.cancel()
            if task is not None:
                self._connections.discard(task)
            metrics.connections_active -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _handle_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        header_blob: bytes,
    ) -> bool:
        metrics = self.service.metrics
        config = self.service.config
        try:
            method, path, headers = _parse_head(header_blob)
        except ValueError:
            metrics.record_error()
            await self._respond(writer, 400, {"error": "malformed request"}, close=True)
            return False

        length = 0
        raw_length = headers.get("content-length")
        if raw_length is not None:
            try:
                length = int(raw_length)
            except ValueError:
                metrics.record_error()
                await self._respond(
                    writer, 400, {"error": "bad content-length"}, close=True
                )
                return False
        limit = (
            config.max_table_bytes if path == "/v1/table" else config.max_body_bytes
        )
        if length < 0 or length > limit:
            metrics.record_error()
            await self._respond(writer, 413, {"error": "body too large"}, close=True)
            return False
        body = b""
        if length:
            # Small bodies almost always arrive in the same segment as the
            # headers, so the fast path reads without a deadline wrapper;
            # only a body still in flight pays for asyncio.wait_for.
            buffered = getattr(reader, "_buffer", b"")
            try:
                if len(buffered) >= length:
                    body = await reader.readexactly(length)
                else:
                    body = await asyncio.wait_for(
                        reader.readexactly(length), config.request_deadline_s
                    )
            except asyncio.IncompleteReadError:
                # Peer vanished between headers and body: a disconnect,
                # not a protocol error on our side.
                metrics.record_error()
                metrics.record_disconnect()
                return False  # cannot answer a half-received request
            except asyncio.TimeoutError:
                metrics.record_error()
                return False  # body never arrived within the deadline

        keep_alive = headers.get("connection", "keep-alive").lower() != "close"

        if path == "/v1/decide":
            if method != "POST":
                metrics.record_error()
                await self._respond(writer, 405, {"error": "POST required"})
                return keep_alive
            trace_id = self._next_trace_id()
            started = time.perf_counter()
            action = CHAOS_NONE if self.chaos is None else self.chaos.next_action()
            chaos_tag = None if action == CHAOS_NONE else action
            if action != CHAOS_NONE:
                metrics.record_chaos(action)
                if action == CHAOS_RESET:
                    # Abort the transport outright: the client sees a peer
                    # reset with no response bytes, the failure its retry
                    # path exists for.
                    metrics.record_error()
                    writer.transport.abort()
                    self._finish_span("decide", trace_id, started, "reset", chaos_tag)
                    return False
                if action == CHAOS_ERROR:
                    metrics.record_error()
                    await self._respond(writer, 500, {"error": "injected failure"})
                    self._finish_span(
                        "decide", trace_id, started, "error-500", chaos_tag
                    )
                    return keep_alive
                if action == CHAOS_KILL:
                    # The worker dies mid-request: abort the transport so
                    # the client sees a reset, then fire the kill hook (a
                    # cluster worker exits the process here — the crash
                    # its supervisor exists to repair).  Without a hook
                    # the abort alone stands in for the crash.
                    metrics.record_error()
                    writer.transport.abort()
                    self._finish_span("decide", trace_id, started, "killed", chaos_tag)
                    if self.kill_hook is not None:
                        self.kill_hook()
                    return False
                if action == CHAOS_SLOW:
                    await asyncio.sleep(self.chaos.config.slow_delay_s)
                elif action == CHAOS_TABLE_SWAP:
                    self._chaos_table_swap()
            binary = headers.get("content-type", "") == CONTENT_TYPE_BINARY
            metrics.record_protocol("binary" if binary else "json")
            if binary:
                # Binary exchanges answer in kind — the content type *is*
                # the negotiation (an old JSON-only server would answer
                # the degraded JSON fallback here, which binary clients
                # detect and downgrade on).
                try:
                    requests = decode_request_batch(body)
                except ProtocolError:
                    response = self.service.fallback_response(
                        "unknown", None, REASON_MALFORMED
                    )
                    await self._respond_raw(
                        writer,
                        200,
                        encode_response_batch((response,)),
                        keep_alive,
                        content_type=_BINARY_HEADERS,
                    )
                    self._finish_span(
                        "decide", trace_id, started, "degraded", chaos_tag
                    )
                    return keep_alive
                if len(requests) == 1:
                    responses = (await self._decide_coalesced(requests[0]),)
                else:
                    # A client-built batch is already one flush worth of
                    # work; answer it with one vectorized lookup.
                    responses = self.service.decide_batch(requests)
                await self._respond_raw(
                    writer,
                    200,
                    encode_response_batch(responses),
                    keep_alive,
                    content_type=_BINARY_HEADERS,
                )
                degraded = any(r.degraded for r in responses)
                self._finish_span(
                    "decide",
                    trace_id,
                    started,
                    "degraded" if degraded else "ok",
                    chaos_tag,
                    session_id=responses[0].session_id,
                    arm=responses[0].arm,
                )
                return keep_alive
            try:
                request = DecisionRequest.from_json(body)
            except ProtocolError:
                response = self.service.decide_payload(body)  # salvage path
            else:
                response = await self._decide_coalesced(request)
            await self._respond_raw(writer, 200, response.to_json(), keep_alive)
            self._finish_span(
                "decide",
                trace_id,
                started,
                "degraded" if response.degraded else "ok",
                chaos_tag,
                session_id=response.session_id,
                arm=response.arm,
            )
            return keep_alive
        if path == "/metrics":
            await self._respond(
                writer, 200, self.service.metrics_document(), close=not keep_alive
            )
            return keep_alive
        if path == "/healthz":
            experiment = self.service.experiment
            health = {
                "status": "ok",
                "protocol_version": PROTOCOL_VERSION,
                "binary_protocol": True,  # advertises the opt-in encoding
                "table_loaded": self.service.table_loaded,
                "num_levels": len(self.service.ladder),
                "experiment_arms": (
                    [arm.name for arm in experiment.arms]
                    if experiment is not None
                    else None
                ),
            }
            if self.worker_id is not None:
                health["worker_id"] = self.worker_id
            await self._respond(writer, 200, health, close=not keep_alive)
            return keep_alive
        if path == "/v1/experiment":
            if method == "GET":
                experiment = self.service.experiment
                await self._respond(
                    writer,
                    200,
                    {
                        "experiment": (
                            experiment.to_dict() if experiment is not None else None
                        )
                    },
                    close=not keep_alive,
                )
                return keep_alive
            if method != "POST":
                metrics.record_error()
                await self._respond(writer, 405, {"error": "GET or POST required"})
                return keep_alive
            try:
                payload = json.loads(body) if body else None
            except (ValueError, UnicodeDecodeError):
                metrics.record_error()
                await self._respond(writer, 400, {"error": "body is not valid JSON"})
                return keep_alive
            try:
                if payload is None or payload == {} or (
                    isinstance(payload, dict) and payload.get("arms") is None
                ):
                    # An empty body (or explicit null arms) turns the
                    # experiment off — all traffic back to the table.
                    self.service.set_experiment(None)
                else:
                    self.service.set_experiment(ExperimentConfig.from_dict(payload))
            except ValueError as exc:
                metrics.record_error()
                await self._respond(writer, 400, {"error": f"bad experiment: {exc}"})
                return keep_alive
            experiment = self.service.experiment
            await self._respond(
                writer,
                200,
                {
                    "experiment": (
                        experiment.to_dict() if experiment is not None else None
                    )
                },
                close=not keep_alive,
            )
            return keep_alive
        if path == "/v1/table":
            if method != "POST":
                metrics.record_error()
                await self._respond(writer, 405, {"error": "POST required"})
                return keep_alive
            swap_started = time.perf_counter()
            try:
                table = DecisionTable.from_bytes(body)
                self.service.swap_table(table)
            except (ValueError, IndexError, struct_error) as exc:
                metrics.record_error()
                await self._respond(writer, 400, {"error": f"bad table: {exc}"})
                self._finish_span(
                    "table-swap", self._next_trace_id(), swap_started, "bad-table", None
                )
                return keep_alive
            self._finish_span(
                "table-swap", self._next_trace_id(), swap_started, "ok", None
            )
            await self._respond(
                writer,
                200,
                {"swapped": True, "num_entries": table.num_entries},
                close=not keep_alive,
            )
            return keep_alive

        metrics.record_error()
        await self._respond(writer, 404, {"error": f"no route {path}"})
        return keep_alive

    # ------------------------------------------------------------------
    # Micro-batching
    # ------------------------------------------------------------------

    async def _decide_coalesced(self, request: DecisionRequest) -> DecisionResponse:
        """Queue one decision and await the tick's shared batch flush.

        Concurrent handler tasks that reach this point in the same
        event-loop tick land in one pending list; the first of them
        schedules a ``call_soon`` flush, which answers the whole batch
        with a single vectorized :meth:`DecisionService.decide_batch`
        call.  Under low concurrency the batch has one element and the
        behaviour (including budget handling) matches the scalar path;
        under load the batch grows to the number of in-flight requests —
        visible as the ``batch_occupancy`` histogram in ``/metrics``.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._batch_pending.append((request, future))
        if not self._batch_scheduled:
            self._batch_scheduled = True
            loop.call_soon(self._flush_batch)
        return await future

    def _flush_batch(self) -> None:
        pending, self._batch_pending = self._batch_pending, []
        self._batch_scheduled = False
        if not pending:  # pragma: no cover - flush raced an empty queue
            return
        started = time.perf_counter()
        responses = self.service.decide_batch([r for r, _ in pending])
        wall_s = time.perf_counter() - started
        self.service.metrics.record_span("decide-batch", wall_s * 1e6)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                SolverCall(
                    session_id="",
                    t_mono=tracer.now(),
                    op="service-micro-batch",
                    instances=len(pending),
                    plans=0,
                    wall_s=wall_s,
                )
            )
        for (_, future), response in zip(pending, responses):
            if not future.done():  # the connection may have been torn down
                future.set_result(response)

    # ------------------------------------------------------------------

    def _next_trace_id(self) -> str:
        self._trace_seq += 1
        return f"t-{self._trace_seq:08d}"

    def _finish_span(
        self,
        name: str,
        trace_id: str,
        started: float,
        status: str,
        chaos: Optional[str],
        session_id: str = "",
        arm: Optional[str] = None,
    ) -> None:
        """Record one request span into /metrics and (if on) the tracer."""
        wall_s = time.perf_counter() - started
        self.service.metrics.record_span(name, wall_s * 1e6)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(
                RequestSpan(
                    session_id=session_id,
                    t_mono=tracer.now(),
                    trace_id=trace_id,
                    name=name,
                    wall_s=wall_s,
                    status=status,
                    chaos=chaos,
                    worker=self.worker_id,
                    arm=arm,
                )
            )

    def _chaos_table_swap(self) -> None:
        """Flip the service's table state mid-flight (injected).

        Unloads the active table (stashing it) or restores the stashed
        one — both through the service's own swap path, so the exercise
        is exactly the operational warm/cold swap under live traffic.
        """
        if self.service.table_loaded:
            self._stashed_table = self.service.table
            self.service.unload_table()
        elif self._stashed_table is not None:
            table, self._stashed_table = self._stashed_table, None
            self.service.swap_table(table)

    # ------------------------------------------------------------------

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict, close: bool = False
    ) -> None:
        await self._respond_raw(
            writer,
            status,
            json.dumps(payload, separators=(",", ":")).encode(),
            not close,
        )

    async def _respond_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        keep_alive: bool,
        content_type: bytes = _JSON_HEADERS,
    ) -> None:
        head = (
            _STATUS_LINES[status]
            + content_type
            + b"Content-Length: %d\r\n" % len(body)
            + (b"Connection: keep-alive\r\n" if keep_alive else b"Connection: close\r\n")
            + b"\r\n"
        )
        writer.write(head + body)
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            self.service.metrics.record_disconnect()


def _parse_head(blob: bytes) -> Tuple[str, str, dict]:
    """Parse the request line + headers; raises ValueError when invalid."""
    try:
        text = blob.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ValueError(str(exc)) from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"bad request line {lines[0]!r}")
    method, target = parts[0], parts[1]
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"bad header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    # Strip any query string; routes are path-only.
    path = target.split("?", 1)[0]
    return method, path, headers
