"""Built-in service telemetry.

Everything a load balancer or dashboard needs to judge the decision
service's health, kept cheap enough to update on every request:

* monotonically increasing counters (requests, decision sources,
  degraded reasons, table swaps);
* a fixed-bucket latency histogram — bounded memory, constant-time
  observation, and quantile estimates good enough for p50/p99 SLOs.

The whole state exports as one JSON document from ``/metrics``; the
schema is documented in ``docs/service.md`` and locked by tests.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

__all__ = [
    "LatencyHistogram",
    "ServiceMetrics",
    "merge_metrics_snapshots",
    "DEFAULT_BUCKET_BOUNDS_US",
]

#: Upper bounds (microseconds) of the default latency buckets.  Spans the
#: table-lookup regime (tens of µs) through badly overloaded (>100 ms);
#: the final bucket is implicit +inf.
DEFAULT_BUCKET_BOUNDS_US = (
    50.0,
    100.0,
    200.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram over microsecond latencies.

    ``observe`` is O(log buckets); memory is O(buckets) regardless of
    request volume — the standard production trade-off (exact quantiles
    are not worth an unbounded reservoir at millions of requests).
    Quantiles are estimated by linear interpolation inside the bucket
    that contains the target rank, which is exact to within one bucket
    width.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum_us", "_max_us")

    def __init__(self, bounds_us: Sequence[float] = DEFAULT_BUCKET_BOUNDS_US) -> None:
        bounds = [float(b) for b in bounds_us]
        if not bounds or bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        if bounds[0] <= 0:
            raise ValueError("bucket bounds must be positive")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last bucket = +inf
        self._count = 0
        self._sum_us = 0.0
        self._max_us = 0.0

    def observe(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError("latency must be >= 0")
        self._counts[bisect.bisect_left(self._bounds, latency_us)] += 1
        self._count += 1
        self._sum_us += latency_us
        if latency_us > self._max_us:
            self._max_us = latency_us

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean_us(self) -> float:
        return self._sum_us / self._count if self._count else 0.0

    @property
    def max_us(self) -> float:
        return self._max_us

    def quantile(self, q: float) -> float:
        """Estimated latency at quantile ``q`` in [0, 1]; 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self._bounds[i - 1] if i > 0 else 0.0
                # The overflow bucket has no upper edge; report the max seen.
                upper = self._bounds[i] if i < len(self._bounds) else self._max_us
                if upper <= lower:
                    return upper
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self._max_us

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same bounds) into this one."""
        if other._bounds != self._bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self._count += other._count
        self._sum_us += other._sum_us
        self._max_us = max(self._max_us, other._max_us)

    def to_dict(self) -> dict:
        return {
            "bounds_us": list(self._bounds),
            "counts": list(self._counts),
            "count": self._count,
            "sum_us": self._sum_us,
            "mean_us": self.mean_us,
            "max_us": self._max_us,
            "p50_us": self.quantile(0.50),
            "p99_us": self.quantile(0.99),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LatencyHistogram":
        """Reconstruct a histogram from its :meth:`to_dict` document.

        The per-bucket counts, total count, sum, and max round-trip
        exactly (JSON floats serialise via ``repr``), so a snapshot
        shipped across a process boundary merges losslessly — the
        mechanism behind the cluster-wide ``/metrics`` aggregation.
        """
        if not isinstance(payload, dict):
            raise ValueError("histogram payload must be a JSON object")
        try:
            bounds = payload["bounds_us"]
            counts = [int(c) for c in payload["counts"]]
            count = int(payload["count"])
            sum_us = float(payload["sum_us"])
            max_us = float(payload["max_us"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed histogram payload: {exc}") from None
        histogram = cls(bounds)
        if len(counts) != len(histogram._counts):
            raise ValueError(
                f"{len(counts)} bucket counts for {len(bounds)} bounds"
            )
        if any(c < 0 for c in counts) or count != sum(counts):
            raise ValueError("bucket counts must be >= 0 and sum to the count")
        histogram._counts = counts
        histogram._count = count
        histogram._sum_us = sum_us
        histogram._max_us = max_us
        return histogram


class ServiceMetrics:
    """Counters + latency histogram for one server instance.

    The decision-source breakdown distinguishes healthy ``table``
    answers, ``fallback`` answers (further split by reason), and hard
    ``error`` responses (protocol/transport failures that could not be
    served at all — the acceptance criterion requires these to stay 0
    under a missing-table loadtest).
    """

    def __init__(self, bounds_us: Sequence[float] = DEFAULT_BUCKET_BOUNDS_US) -> None:
        self.requests_total = 0
        self.decisions_table = 0
        self.decisions_fallback = 0
        self.errors_total = 0
        self.degraded_total = 0
        self.fallback_reasons: Dict[str, int] = {}
        self.table_swaps_total = 0
        self.connections_opened = 0
        self.connections_active = 0
        self.connections_reset = 0
        self.chaos_injected: Dict[str, int] = {}
        #: Micro-batch occupancy: batch size -> number of batches flushed
        #: at that size (keys are strings so the dict round-trips JSON
        #: unchanged).  Sizes sum-weighted give decisions served batched.
        self.batch_occupancy: Dict[str, int] = {}
        #: Wire-encoding negotiation outcomes: "json"/"binary" -> number
        #: of /v1/decide exchanges served in that encoding.
        self.protocol_requests: Dict[str, int] = {}
        self.latency = LatencyHistogram(bounds_us)
        #: Per-span-name request-phase histograms (observability layer);
        #: bucket bounds are shared with the request latency histogram.
        self.spans: Dict[str, LatencyHistogram] = {}
        self._bounds_us = tuple(bounds_us)
        self._sessions_seen: set = set()

    # ------------------------------------------------------------------

    def record_decision(
        self,
        source: str,
        latency_us: float,
        degraded: bool,
        reason: Optional[str],
        session_id: Optional[str] = None,
    ) -> None:
        self.requests_total += 1
        if source == "table":
            self.decisions_table += 1
        else:
            self.decisions_fallback += 1
        if degraded:
            self.degraded_total += 1
            key = reason or "unknown"
            self.fallback_reasons[key] = self.fallback_reasons.get(key, 0) + 1
        if session_id is not None and len(self._sessions_seen) < 100_000:
            self._sessions_seen.add(session_id)
        self.latency.observe(latency_us)

    def record_error(self) -> None:
        self.requests_total += 1
        self.errors_total += 1

    def record_table_swap(self) -> None:
        self.table_swaps_total += 1

    def record_disconnect(self) -> None:
        """A connection died mid-request (peer reset, chaos abort)."""
        self.connections_reset += 1

    def record_chaos(self, kind: str) -> None:
        """One injected misbehaviour of the given kind (chaos mode)."""
        self.chaos_injected[kind] = self.chaos_injected.get(kind, 0) + 1

    def record_batch(self, size: int) -> None:
        """One micro-batch flush that served ``size`` decisions."""
        key = str(size)
        self.batch_occupancy[key] = self.batch_occupancy.get(key, 0) + 1

    def record_protocol(self, protocol: str, count: int = 1) -> None:
        """One /v1/decide exchange served in the given wire encoding."""
        self.protocol_requests[protocol] = (
            self.protocol_requests.get(protocol, 0) + count
        )

    def record_span(self, name: str, latency_us: float) -> None:
        """One measured request span (e.g. ``decide``, ``table-swap``)."""
        histogram = self.spans.get(name)
        if histogram is None:
            histogram = self.spans[name] = LatencyHistogram(self._bounds_us)
        histogram.observe(latency_us)

    @property
    def sessions_seen(self) -> int:
        return len(self._sessions_seen)

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The ``/metrics`` JSON document."""
        return {
            "requests_total": self.requests_total,
            "decisions": {
                "table": self.decisions_table,
                "fallback": self.decisions_fallback,
                "error": self.errors_total,
            },
            "degraded_total": self.degraded_total,
            "fallback_reasons": dict(self.fallback_reasons),
            "sessions_seen": self.sessions_seen,
            "table_swaps_total": self.table_swaps_total,
            "connections": {
                "opened": self.connections_opened,
                "active": self.connections_active,
                "reset": self.connections_reset,
            },
            "chaos_injected": dict(self.chaos_injected),
            "batch_occupancy": dict(self.batch_occupancy),
            "protocol_requests": dict(self.protocol_requests),
            "latency_us": self.latency.to_dict(),
            "spans_us": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.spans.items())
            },
        }


def _sum_counter_dicts(dicts: List[Dict[str, int]]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for d in dicts:
        for key, value in d.items():
            out[key] = out.get(key, 0) + int(value)
    return out


def _merge_histogram_dicts(payloads: List[dict]) -> dict:
    merged = LatencyHistogram.from_dict(payloads[0])
    for payload in payloads[1:]:
        merged.merge(LatencyHistogram.from_dict(payload))
    return merged.to_dict()


def merge_metrics_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-worker :meth:`ServiceMetrics.snapshot` documents into one
    cluster-wide document with the same schema.

    Counters sum; the latency and per-span histograms merge bucket by
    bucket, which is lossless — the merged counts equal what a single
    shared histogram would have observed, so cluster p50/p99 estimates
    carry exactly the same per-bucket error bound as a single worker's.
    ``sessions_seen`` sums too: a session's requests all ride one
    keep-alive connection, which pins them to one worker, so workers see
    disjoint session sets (a re-dialed session mid-failover may be
    double-counted — an upper bound, never an undercount).

    Raises ``ValueError`` on an empty list or a snapshot whose histogram
    buckets disagree (workers must share one bucket layout to merge
    losslessly).
    """
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    merged = {
        "requests_total": sum(int(s["requests_total"]) for s in snapshots),
        "decisions": _sum_counter_dicts([s["decisions"] for s in snapshots]),
        "degraded_total": sum(int(s["degraded_total"]) for s in snapshots),
        "fallback_reasons": _sum_counter_dicts(
            [s["fallback_reasons"] for s in snapshots]
        ),
        "sessions_seen": sum(int(s["sessions_seen"]) for s in snapshots),
        "table_swaps_total": sum(int(s["table_swaps_total"]) for s in snapshots),
        "connections": _sum_counter_dicts([s["connections"] for s in snapshots]),
        "chaos_injected": _sum_counter_dicts(
            [s["chaos_injected"] for s in snapshots]
        ),
        # Per-size batch counts and per-encoding request counts sum
        # losslessly exactly like the other counter dicts (.get: the
        # keys postdate the first snapshot schema).
        "batch_occupancy": _sum_counter_dicts(
            [s.get("batch_occupancy", {}) for s in snapshots]
        ),
        "protocol_requests": _sum_counter_dicts(
            [s.get("protocol_requests", {}) for s in snapshots]
        ),
        "latency_us": _merge_histogram_dicts([s["latency_us"] for s in snapshots]),
    }
    span_names = sorted({name for s in snapshots for name in s.get("spans_us", {})})
    merged["spans_us"] = {
        name: _merge_histogram_dicts(
            [s["spans_us"][name] for s in snapshots if name in s.get("spans_us", {})]
        )
        for name in span_names
    }
    return merged
