"""Built-in service telemetry.

Everything a load balancer or dashboard needs to judge the decision
service's health, kept cheap enough to update on every request:

* monotonically increasing counters (requests, decision sources,
  degraded reasons, table swaps);
* a fixed-bucket latency histogram — bounded memory, constant-time
  observation, and quantile estimates good enough for p50/p99 SLOs.

The whole state exports as one JSON document from ``/metrics``; the
schema is documented in ``docs/service.md`` and locked by tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.histmerge import FixedBucketHistogram, merge_histogram_dicts

__all__ = [
    "LatencyHistogram",
    "ServiceMetrics",
    "merge_metrics_snapshots",
    "DEFAULT_BUCKET_BOUNDS_US",
]

#: Upper bounds (microseconds) of the default latency buckets.  Spans the
#: table-lookup regime (tens of µs) through badly overloaded (>100 ms);
#: the final bucket is implicit +inf.
DEFAULT_BUCKET_BOUNDS_US = (
    50.0,
    100.0,
    200.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
)


class LatencyHistogram(FixedBucketHistogram):
    """Fixed-bucket histogram over microsecond latencies.

    A unit-suffixed specialisation of the shared
    :class:`repro.core.histmerge.FixedBucketHistogram` (the bucketing,
    quantile, merge, and serialization machinery lives there so the
    fleet driver can aggregate without importing the service layer):
    values are non-negative, the serialized keys carry the ``_us``
    suffix the ``/metrics`` schema documents, and quantile interpolation
    floors the first bucket at 0.
    """

    __slots__ = ()

    key_suffix = "_us"
    non_negative = True
    value_name = "latency"
    underflow_lower = 0.0

    def __init__(self, bounds_us: Sequence[float] = DEFAULT_BUCKET_BOUNDS_US) -> None:
        super().__init__(bounds_us)

    @property
    def mean_us(self) -> float:
        return self.mean

    @property
    def max_us(self) -> float:
        return self.max_value


class ServiceMetrics:
    """Counters + latency histogram for one server instance.

    The decision-source breakdown distinguishes healthy ``table``
    answers, ``fallback`` answers (further split by reason), and hard
    ``error`` responses (protocol/transport failures that could not be
    served at all — the acceptance criterion requires these to stay 0
    under a missing-table loadtest).
    """

    def __init__(self, bounds_us: Sequence[float] = DEFAULT_BUCKET_BOUNDS_US) -> None:
        self.requests_total = 0
        self.decisions_table = 0
        self.decisions_controller = 0
        self.decisions_fallback = 0
        self.errors_total = 0
        self.degraded_total = 0
        self.fallback_reasons: Dict[str, int] = {}
        self.table_swaps_total = 0
        self.connections_opened = 0
        self.connections_active = 0
        self.connections_reset = 0
        self.chaos_injected: Dict[str, int] = {}
        #: Micro-batch occupancy: batch size -> number of batches flushed
        #: at that size (keys are strings so the dict round-trips JSON
        #: unchanged).  Sizes sum-weighted give decisions served batched.
        self.batch_occupancy: Dict[str, int] = {}
        #: Wire-encoding negotiation outcomes: "json"/"binary" -> number
        #: of /v1/decide exchanges served in that encoding.
        self.protocol_requests: Dict[str, int] = {}
        self.latency = LatencyHistogram(bounds_us)
        #: Per-span-name request-phase histograms (observability layer);
        #: bucket bounds are shared with the request latency histogram.
        self.spans: Dict[str, LatencyHistogram] = {}
        #: Per-experiment-arm breakdowns, keyed by arm name.  Each value
        #: mirrors a slice of the top-level document (decision count,
        #: degraded count, source and reason counters, latency histogram)
        #: so dashboards can diff arms without joining streams.
        self.arms: Dict[str, dict] = {}
        self._bounds_us = tuple(bounds_us)
        self._sessions_seen: set = set()

    # ------------------------------------------------------------------

    def record_decision(
        self,
        source: str,
        latency_us: float,
        degraded: bool,
        reason: Optional[str],
        session_id: Optional[str] = None,
        arm: Optional[str] = None,
    ) -> None:
        self.requests_total += 1
        if source == "table":
            self.decisions_table += 1
        elif source == "controller":
            self.decisions_controller += 1
        else:
            self.decisions_fallback += 1
        if degraded:
            self.degraded_total += 1
            key = reason or "unknown"
            self.fallback_reasons[key] = self.fallback_reasons.get(key, 0) + 1
        if arm is not None:
            stats = self.arms.get(arm)
            if stats is None:
                stats = self.arms[arm] = {
                    "decisions": 0,
                    "degraded": 0,
                    "sources": {},
                    "reasons": {},
                    "latency": LatencyHistogram(self._bounds_us),
                }
            stats["decisions"] += 1
            stats["sources"][source] = stats["sources"].get(source, 0) + 1
            if degraded:
                stats["degraded"] += 1
                key = reason or "unknown"
                stats["reasons"][key] = stats["reasons"].get(key, 0) + 1
            stats["latency"].observe(latency_us)
        if session_id is not None and len(self._sessions_seen) < 100_000:
            self._sessions_seen.add(session_id)
        self.latency.observe(latency_us)

    def record_error(self) -> None:
        self.requests_total += 1
        self.errors_total += 1

    def record_table_swap(self) -> None:
        self.table_swaps_total += 1

    def record_disconnect(self) -> None:
        """A connection died mid-request (peer reset, chaos abort)."""
        self.connections_reset += 1

    def record_chaos(self, kind: str) -> None:
        """One injected misbehaviour of the given kind (chaos mode)."""
        self.chaos_injected[kind] = self.chaos_injected.get(kind, 0) + 1

    def record_batch(self, size: int) -> None:
        """One micro-batch flush that served ``size`` decisions."""
        key = str(size)
        self.batch_occupancy[key] = self.batch_occupancy.get(key, 0) + 1

    def record_protocol(self, protocol: str, count: int = 1) -> None:
        """One /v1/decide exchange served in the given wire encoding."""
        self.protocol_requests[protocol] = (
            self.protocol_requests.get(protocol, 0) + count
        )

    def record_span(self, name: str, latency_us: float) -> None:
        """One measured request span (e.g. ``decide``, ``table-swap``)."""
        histogram = self.spans.get(name)
        if histogram is None:
            histogram = self.spans[name] = LatencyHistogram(self._bounds_us)
        histogram.observe(latency_us)

    @property
    def sessions_seen(self) -> int:
        return len(self._sessions_seen)

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The ``/metrics`` JSON document."""
        return {
            "requests_total": self.requests_total,
            "decisions": {
                "table": self.decisions_table,
                "controller": self.decisions_controller,
                "fallback": self.decisions_fallback,
                "error": self.errors_total,
            },
            "degraded_total": self.degraded_total,
            "fallback_reasons": dict(self.fallback_reasons),
            "sessions_seen": self.sessions_seen,
            "table_swaps_total": self.table_swaps_total,
            "connections": {
                "opened": self.connections_opened,
                "active": self.connections_active,
                "reset": self.connections_reset,
            },
            "chaos_injected": dict(self.chaos_injected),
            "batch_occupancy": dict(self.batch_occupancy),
            "protocol_requests": dict(self.protocol_requests),
            "latency_us": self.latency.to_dict(),
            "spans_us": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.spans.items())
            },
            "arms": {
                name: {
                    "decisions": stats["decisions"],
                    "degraded": stats["degraded"],
                    "sources": dict(stats["sources"]),
                    "reasons": dict(stats["reasons"]),
                    "latency_us": stats["latency"].to_dict(),
                }
                for name, stats in sorted(self.arms.items())
            },
        }


def _sum_counter_dicts(dicts: List[Dict[str, int]]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for d in dicts:
        for key, value in d.items():
            out[key] = out.get(key, 0) + int(value)
    return out


def _merge_histogram_dicts(payloads: List[dict]) -> dict:
    return merge_histogram_dicts(payloads, LatencyHistogram)


def merge_metrics_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-worker :meth:`ServiceMetrics.snapshot` documents into one
    cluster-wide document with the same schema.

    Counters sum; the latency and per-span histograms merge bucket by
    bucket, which is lossless — the merged counts equal what a single
    shared histogram would have observed, so cluster p50/p99 estimates
    carry exactly the same per-bucket error bound as a single worker's.
    ``sessions_seen`` sums too: a session's requests all ride one
    keep-alive connection, which pins them to one worker, so workers see
    disjoint session sets (a re-dialed session mid-failover may be
    double-counted — an upper bound, never an undercount).

    Raises ``ValueError`` on an empty list or a snapshot whose histogram
    buckets disagree (workers must share one bucket layout to merge
    losslessly).
    """
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    merged = {
        "requests_total": sum(int(s["requests_total"]) for s in snapshots),
        "decisions": _sum_counter_dicts([s["decisions"] for s in snapshots]),
        "degraded_total": sum(int(s["degraded_total"]) for s in snapshots),
        "fallback_reasons": _sum_counter_dicts(
            [s["fallback_reasons"] for s in snapshots]
        ),
        "sessions_seen": sum(int(s["sessions_seen"]) for s in snapshots),
        "table_swaps_total": sum(int(s["table_swaps_total"]) for s in snapshots),
        "connections": _sum_counter_dicts([s["connections"] for s in snapshots]),
        "chaos_injected": _sum_counter_dicts(
            [s["chaos_injected"] for s in snapshots]
        ),
        # Per-size batch counts and per-encoding request counts sum
        # losslessly exactly like the other counter dicts (.get: the
        # keys postdate the first snapshot schema).
        "batch_occupancy": _sum_counter_dicts(
            [s.get("batch_occupancy", {}) for s in snapshots]
        ),
        "protocol_requests": _sum_counter_dicts(
            [s.get("protocol_requests", {}) for s in snapshots]
        ),
        "latency_us": _merge_histogram_dicts([s["latency_us"] for s in snapshots]),
    }
    span_names = sorted({name for s in snapshots for name in s.get("spans_us", {})})
    merged["spans_us"] = {
        name: _merge_histogram_dicts(
            [s["spans_us"][name] for s in snapshots if name in s.get("spans_us", {})]
        )
        for name in span_names
    }
    # Per-arm breakdowns merge the same way: counters sum, histograms
    # merge bucket-by-bucket — lossless because assignment is a pure
    # function of the session id, so every worker labels a given session
    # with the same arm.
    arm_names = sorted({name for s in snapshots for name in s.get("arms", {})})
    merged_arms = {}
    for name in arm_names:
        slices = [s["arms"][name] for s in snapshots if name in s.get("arms", {})]
        merged_arms[name] = {
            "decisions": sum(int(a["decisions"]) for a in slices),
            "degraded": sum(int(a["degraded"]) for a in slices),
            "sources": _sum_counter_dicts([a["sources"] for a in slices]),
            "reasons": _sum_counter_dicts([a["reasons"] for a in slices]),
            "latency_us": _merge_histogram_dicts([a["latency_us"] for a in slices]),
        }
    merged["arms"] = merged_arms
    return merged
