"""Closed-loop, trace-driven load generation for the decision service.

Each virtual session replays one throughput trace the way a player
would: it predicts with the harmonic mean of its last measured chunks
(the paper's predictor), asks the server for a level, "downloads" the
chunk at the trace's bandwidth, advances its buffer, and only then
issues the next request — closed-loop, so offered load tracks service
capacity instead of overrunning it.  ``concurrency`` session workers
drain sessions from a shared queue, which is exactly the many-players /
one-backend shape the multiplayer follow-up paper measures.

Sessions in flight and connections on the wire are independent knobs:
the ``connections`` pool bounds how many TCP connections the generator
holds (``concurrency`` workers lease a pooled keep-alive client per
request), so driving 64 concurrent sessions no longer implies 64
connections — raising session concurrency used to silently raise the
connection fan-out with it, which both overstated the per-connection
capacity of a sharded server and made the offered rate depend on the
session count.  With ``connections=c`` against a server whose per-request
service time is ``s``, the closed loop's offered rate is ``c / s`` —
the invariant the cluster scale tests pin down.

The report carries client-observed latency (histogram + quantiles),
decision-source and degradation breakdowns, throughput in decisions per
second, and a hard error count — the acceptance bar for a cold server
is *zero* errors with every decision served by the fallback.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..prediction.base import ThroughputPredictor
from ..prediction.registry import make_predictor
from ..qoe import compute_qoe
from ..traces.trace import Trace
from ..video.presets import (
    DEFAULT_BUFFER_CAPACITY_S,
    ENVIVIO_CHUNK_SECONDS,
    ENVIVIO_LADDER_KBPS,
)
from .client import RetryPolicy, ServiceClient, ServiceUnavailable
from .metrics import LatencyHistogram
from .protocol import MAX_BATCH_RECORDS, DecisionRequest

__all__ = [
    "LoadTestConfig",
    "LoadTestReport",
    "open_loop_arrivals",
    "run_loadtest",
    "run_loadtest_sync",
]


@dataclass(frozen=True)
class LoadTestConfig:
    """Shape of one load test run."""

    sessions: int = 32
    chunks_per_session: int = 65
    concurrency: int = 8
    #: TCP connections the generator keeps open (the client pool size);
    #: ``None`` means one per session worker, the historical behaviour.
    connections: Optional[int] = None
    dataset: str = "fcc"
    seed: int = 0
    trace_duration_s: float = 320.0
    deadline_s: float = 2.0
    prediction_window: int = 5
    robust: bool = True
    ladder_kbps: Tuple[float, ...] = ENVIVIO_LADDER_KBPS
    chunk_duration_s: float = ENVIVIO_CHUNK_SECONDS
    buffer_capacity_s: float = DEFAULT_BUFFER_CAPACITY_S
    #: Wire encoding: ``"json"`` (one request per HTTP exchange) or
    #: ``"binary"`` (compact frames; concurrent workers' requests are
    #: coalesced into multi-record frames, the client half of the
    #: server's micro-batching).
    protocol: str = "json"
    #: Client-side retry policy (None = single attempt per decision).
    retry: Optional[RetryPolicy] = None
    #: Serve a decision locally (rate-based rule) when the server cannot
    #: — sessions then always run to completion, the availability story
    #: a real player needs when the decision backend dies mid-stream.
    local_fallback: bool = True
    #: Predictor registry names routed round-robin over sessions (see
    #: :mod:`repro.prediction.registry`); session ``i`` predicts with
    #: ``predictors[i % len]`` and feeds its download durations and
    #: stall times back, so gap-corrected predictors engage.  Empty =
    #: the historical inline harmonic mean.
    predictors: Tuple[str, ...] = ()
    #: Trace-family key stamped on every request (JSON protocol only);
    #: the server pools the sessions' samples into one shared prior and
    #: answers with ``prior_kbps``.
    family: Optional[str] = None
    #: Open-loop mode: sessions *arrive* on a deterministic wall-clock
    #: schedule instead of being drained from a fixed queue — offered
    #: load no longer tracks service capacity, which is the regime that
    #: exposes overload behaviour.  The arrival rate follows a diurnal
    #: sinusoid, optionally with a step burst (a flash crowd).
    open_loop: bool = False
    arrival_rate_hz: float = 16.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 10.0
    burst_at_s: Optional[float] = None
    burst_sessions: int = 0

    def __post_init__(self) -> None:
        if self.sessions < 1 or self.chunks_per_session < 1:
            raise ValueError("need at least one session and one chunk")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.connections is not None and self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.prediction_window < 1:
            raise ValueError("prediction window must be >= 1")
        if not self.ladder_kbps:
            raise ValueError("ladder must be non-empty")
        if self.protocol not in ("json", "binary"):
            raise ValueError("protocol must be 'json' or 'binary'")
        if self.family is not None and self.protocol != "json":
            raise ValueError("family-keyed sessions require the json protocol")
        if self.arrival_rate_hz <= 0:
            raise ValueError("arrival_rate_hz must be positive")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")
        if self.burst_sessions < 0:
            raise ValueError("burst_sessions must be >= 0")
        if self.burst_at_s is not None and self.burst_at_s < 0:
            raise ValueError("burst_at_s must be >= 0")


@dataclass
class LoadTestReport:
    """Aggregated outcome of a load test."""

    decisions: int = 0
    errors: int = 0
    degraded: int = 0
    sessions_completed: int = 0
    #: Decisions the client had to serve itself (server unreachable /
    #: exhausted retries); also counted in ``decisions`` under the
    #: ``local`` source.
    local_fallbacks: int = 0
    wall_s: float = 0.0
    sources: Dict[str, int] = field(default_factory=dict)
    reasons: Dict[str, int] = field(default_factory=dict)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    qoe_sum: float = 0.0
    qoe_count: int = 0
    #: Per-experiment-arm outcomes (decisions, degraded, sessions, QoE),
    #: keyed by the arm names the server stamps on responses.  Empty when
    #: the server runs no experiment.
    arms: Dict[str, dict] = field(default_factory=dict)
    #: Per-predictor outcomes when ``config.predictors`` routes sessions
    #: across the predictor registry; empty on the inline-harmonic path.
    predictors: Dict[str, dict] = field(default_factory=dict)
    #: Responses that carried a shared-prior estimate (family-keyed runs).
    prior_hits: int = 0

    def arm_stats(self, name: str) -> dict:
        stats = self.arms.get(name)
        if stats is None:
            stats = self.arms[name] = {
                "decisions": 0,
                "degraded": 0,
                "sessions": 0,
                "qoe_sum": 0.0,
                "qoe_count": 0,
            }
        return stats

    def predictor_stats(self, name: str) -> dict:
        stats = self.predictors.get(name)
        if stats is None:
            stats = self.predictors[name] = {
                "decisions": 0,
                "sessions": 0,
                "qoe_sum": 0.0,
                "qoe_count": 0,
            }
        return stats

    @property
    def throughput_dps(self) -> float:
        """Completed decisions per second of wall time."""
        return self.decisions / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_us(self) -> float:
        return self.latency.quantile(0.50)

    @property
    def p95_us(self) -> float:
        return self.latency.quantile(0.95)

    @property
    def p99_us(self) -> float:
        return self.latency.quantile(0.99)

    @property
    def qoe_mean(self) -> float:
        """Mean Eq. 5 QoE over completed sessions (0 when none)."""
        return self.qoe_sum / self.qoe_count if self.qoe_count else 0.0

    def to_dict(self) -> dict:
        return {
            "decisions": self.decisions,
            "errors": self.errors,
            "degraded": self.degraded,
            "sessions_completed": self.sessions_completed,
            "local_fallbacks": self.local_fallbacks,
            "wall_s": self.wall_s,
            "throughput_dps": self.throughput_dps,
            "sources": dict(self.sources),
            "reasons": dict(self.reasons),
            "latency_us": self.latency.to_dict(),
            "qoe_mean": self.qoe_mean,
            "prior_hits": self.prior_hits,
            "predictors": {
                name: {
                    **stats,
                    "qoe_mean": (
                        stats["qoe_sum"] / stats["qoe_count"]
                        if stats["qoe_count"]
                        else 0.0
                    ),
                }
                for name, stats in sorted(self.predictors.items())
            },
            "arms": {
                name: {
                    **stats,
                    "qoe_mean": (
                        stats["qoe_sum"] / stats["qoe_count"]
                        if stats["qoe_count"]
                        else 0.0
                    ),
                }
                for name, stats in sorted(self.arms.items())
            },
        }

    def describe(self) -> str:
        lines = [
            f"decisions {self.decisions} in {self.wall_s:.2f}s"
            f" -> {self.throughput_dps:,.0f} decisions/s",
            f"latency p50 {self.p50_us:,.0f} us | p95 {self.p95_us:,.0f} us"
            f" | p99 {self.p99_us:,.0f} us",
            f"sources {self.sources} | degraded {self.degraded}"
            f" | errors {self.errors}",
            f"sessions completed {self.sessions_completed}"
            f" | mean QoE {self.qoe_mean:.1f}",
        ]
        if self.local_fallbacks:
            lines.append(f"local fallbacks {self.local_fallbacks}")
        if self.reasons:
            lines.append(f"degradation reasons {self.reasons}")
        if self.prior_hits:
            lines.append(f"prior-carrying responses {self.prior_hits}")
        for name, stats in sorted(self.predictors.items()):
            qoe_mean = (
                stats["qoe_sum"] / stats["qoe_count"] if stats["qoe_count"] else 0.0
            )
            lines.append(
                f"predictor {name}: {stats['decisions']} decisions"
                f" | {stats['sessions']} sessions"
                f" | mean QoE {qoe_mean:.1f}"
            )
        for name, stats in sorted(self.arms.items()):
            qoe_mean = (
                stats["qoe_sum"] / stats["qoe_count"] if stats["qoe_count"] else 0.0
            )
            lines.append(
                f"arm {name}: {stats['decisions']} decisions"
                f" | {stats['sessions']} sessions"
                f" | degraded {stats['degraded']}"
                f" | mean QoE {qoe_mean:.1f}"
            )
        return "\n".join(lines)


class _VirtualPlayer:
    """One trace-driven session: buffer dynamics + harmonic prediction."""

    def __init__(
        self,
        session_id: str,
        trace: Trace,
        config: LoadTestConfig,
        predictor: Optional[ThroughputPredictor] = None,
    ) -> None:
        self.session_id = session_id
        self.trace = trace
        self.config = config
        self.predictor = predictor
        self.predictor_name = predictor.name if predictor is not None else None
        self.wall_s = 0.0
        self.buffer_s = 0.0
        self.prev_level: Optional[int] = None
        self.bitrates_kbps: List[float] = []
        self.rebuffer_s = 0.0
        self._measured: deque = deque(maxlen=config.prediction_window)
        self._errors: deque = deque(maxlen=config.prediction_window)
        self._last_predicted: Optional[float] = None

    def _predict_kbps(self) -> float:
        if self.predictor is not None:
            if not self._measured:
                # The same warm start the inline path uses: the trace's
                # first sample, not the predictor's synthetic cold rate.
                return max(self.trace.bandwidth_at(0.0), 1e-3)
            return max(self.predictor.predict(1)[0], 1e-3)
        if not self._measured:
            return max(self.trace.bandwidth_at(0.0), 1e-3)
        return len(self._measured) / sum(1.0 / c for c in self._measured)

    def next_request(self) -> DecisionRequest:
        predicted = self._predict_kbps()
        self._last_predicted = predicted
        return DecisionRequest(
            session_id=self.session_id,
            buffer_s=self.buffer_s,
            predicted_kbps=predicted,
            prev_level=self.prev_level,
            past_errors=tuple(self._errors) if self.config.robust else (),
            family=self.config.family,
        )

    def local_level(self, predicted_kbps: float) -> int:
        """The paper's rate-based rule, computed client-side — the same
        decision the server's fallback path would have produced."""
        level = 0
        for i, rate in enumerate(self.config.ladder_kbps):
            if rate <= predicted_kbps:
                level = i
        return level

    def apply_decision(self, level_index: int) -> None:
        """Advance the session model through one chunk download.

        Download time integrates the trace exactly (Eq. 1's d_k/C_k), so
        a chunk that starts inside a fault-compiled blackout window pays
        the outage's length and then finishes at the restored bandwidth,
        instead of dividing by an instantaneous (near-)zero sample.
        """
        config = self.config
        level = min(max(level_index, 0), len(config.ladder_kbps) - 1)
        size_kilobits = config.chunk_duration_s * config.ladder_kbps[level]
        raw_s, stall_s = self.trace.download_time_and_stall(
            self.wall_s, size_kilobits
        )
        download_s = max(raw_s, 1e-9)
        actual_kbps = max(size_kilobits / download_s, 1e-3)
        if self.predictor is not None:
            # Gap-corrected predictors see the chunk's on/off context.
            self.predictor.observe_kbps(
                actual_kbps, download_s, stall_s=min(stall_s, download_s)
            )
        self.rebuffer_s += max(download_s - self.buffer_s, 0.0)
        self.buffer_s = min(
            max(self.buffer_s - download_s, 0.0) + config.chunk_duration_s,
            config.buffer_capacity_s,
        )
        self.wall_s += download_s
        if self._last_predicted is not None:
            self._errors.append(
                (self._last_predicted - actual_kbps) / actual_kbps
            )
        self._measured.append(actual_kbps)
        self.bitrates_kbps.append(config.ladder_kbps[level])
        self.prev_level = level

    def qoe(self) -> float:
        """Eq. 5 total for the session so far (default weights)."""
        if not self.bitrates_kbps:
            return 0.0
        return compute_qoe(self.bitrates_kbps, self.rebuffer_s).total


def _make_traces(config: LoadTestConfig) -> List[Trace]:
    # Imported here so the service package keeps no hard dependency on
    # the trace generators when callers supply their own traces.
    from ..traces import make_generator

    generator = make_generator(config.dataset, seed=config.seed)
    return generator.generate_many(config.sessions, config.trace_duration_s)


class _ClientPool:
    """A fixed-size pool of keep-alive clients leased one request at a
    time, so connection fan-out is bounded independently of how many
    sessions are in flight.

    In binary mode the pool also coalesces: session workers that ask
    for a decision in the same event-loop tick are merged into one
    multi-record frame sent over a single leased connection (the client
    half of the server's micro-batching), so ``n`` concurrent sessions
    cost one HTTP exchange per tick instead of ``n``.
    """

    def __init__(self, host: str, port: int, size: int, config: LoadTestConfig) -> None:
        self.size = size
        self._clients = [
            ServiceClient(
                host,
                port,
                deadline_s=config.deadline_s,
                retry=config.retry,
                protocol=config.protocol,
            )
            for _ in range(size)
        ]
        self._free: "asyncio.Queue[ServiceClient]" = asyncio.Queue()
        for client in self._clients:
            self._free.put_nowait(client)
        self._coalesce = config.protocol == "binary"
        self._pending: List[Tuple[DecisionRequest, "asyncio.Future"]] = []
        self._flush_scheduled = False

    async def decide(self, request: DecisionRequest):
        if not self._coalesce:
            client = await self._free.get()
            try:
                return await client.decide(request)
            finally:
                self._free.put_nowait(client)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending.append((request, future))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            loop.call_soon(self._spawn_flush)
        return await future

    def _spawn_flush(self) -> None:
        self._flush_scheduled = False
        asyncio.ensure_future(self._flush())

    async def _flush(self) -> None:
        pending, self._pending = self._pending, []
        if not pending:
            return
        # A frame carries at most MAX_BATCH_RECORDS records; overflow
        # (only possible with thousands of workers) ships separately.
        for start in range(0, len(pending), MAX_BATCH_RECORDS):
            chunk = pending[start : start + MAX_BATCH_RECORDS]
            client = await self._free.get()
            try:
                responses = await client.decide_many([r for r, _ in chunk])
            except BaseException as exc:
                for _, future in chunk:
                    if not future.done():
                        future.set_exception(exc)
                continue
            finally:
                self._free.put_nowait(client)
            for (_, future), response in zip(chunk, responses):
                if not future.done():
                    future.set_result(response)

    async def close(self) -> None:
        for client in self._clients:
            await client.close()


async def _drive_session(
    pool: _ClientPool,
    player: _VirtualPlayer,
    config: LoadTestConfig,
    report: LoadTestReport,
) -> None:
    """Run one virtual session to completion against the service.

    The pooled clients never dial eagerly: a connection is established
    (and re-established) inside each request, so a server that is down
    when the run starts — or dies mid-run — costs decisions, not the
    whole session.  With ``config.local_fallback`` on, every decision
    the service cannot serve is answered locally with the rate-based
    rule and the session runs to completion regardless.  Reported
    latency is client-observed end to end — a lease that waits on a
    saturated pool is real queueing delay, so it counts.
    """
    completed = True
    # A session's requests all hash to one arm, so the first armed
    # response labels the whole session for the per-arm QoE rollup.
    session_arm: Optional[str] = None
    pred_stats = (
        report.predictor_stats(player.predictor_name)
        if player.predictor_name is not None
        else None
    )
    for _ in range(config.chunks_per_session):
        request = player.next_request()
        started = time.perf_counter()
        try:
            response = await pool.decide(request)
        except ServiceUnavailable:
            report.errors += 1
            if not config.local_fallback:
                completed = False
                break
            report.local_fallbacks += 1
            report.decisions += 1
            report.sources["local"] = report.sources.get("local", 0) + 1
            if pred_stats is not None:
                pred_stats["decisions"] += 1
            player.apply_decision(
                player.local_level(request.predicted_kbps)
            )
            continue
        latency_us = (time.perf_counter() - started) * 1e6
        report.latency.observe(latency_us)
        report.decisions += 1
        report.sources[response.source] = (
            report.sources.get(response.source, 0) + 1
        )
        if response.degraded:
            report.degraded += 1
            key = response.reason or "unknown"
            report.reasons[key] = report.reasons.get(key, 0) + 1
        if response.prior_kbps is not None:
            report.prior_hits += 1
        if response.arm is not None:
            session_arm = response.arm
            arm_stats = report.arm_stats(response.arm)
            arm_stats["decisions"] += 1
            if response.degraded:
                arm_stats["degraded"] += 1
        if pred_stats is not None:
            pred_stats["decisions"] += 1
        player.apply_decision(response.level_index)
    if completed:
        report.sessions_completed += 1
        qoe = player.qoe()
        report.qoe_sum += qoe
        report.qoe_count += 1
        if session_arm is not None:
            arm_stats = report.arm_stats(session_arm)
            arm_stats["sessions"] += 1
            arm_stats["qoe_sum"] += qoe
            arm_stats["qoe_count"] += 1
        if pred_stats is not None:
            pred_stats["sessions"] += 1
            pred_stats["qoe_sum"] += qoe
            pred_stats["qoe_count"] += 1


async def _session_worker(
    pool: _ClientPool,
    queue: "asyncio.Queue[_VirtualPlayer]",
    config: LoadTestConfig,
    report: LoadTestReport,
) -> None:
    """One closed-loop worker draining the session queue until empty."""
    while True:
        try:
            player = queue.get_nowait()
        except asyncio.QueueEmpty:
            return
        await _drive_session(pool, player, config, report)


async def _arriving_session(
    pool: _ClientPool,
    player: _VirtualPlayer,
    config: LoadTestConfig,
    report: LoadTestReport,
    arrival_s: float,
    started: float,
) -> None:
    """One open-loop session: sleep until its arrival instant, then run."""
    delay = arrival_s - (time.perf_counter() - started)
    if delay > 0:
        await asyncio.sleep(delay)
    await _drive_session(pool, player, config, report)


def open_loop_arrivals(config: LoadTestConfig) -> List[float]:
    """Deterministic arrival instants (seconds) for the open-loop mode.

    The instantaneous arrival rate is the diurnal sinusoid
    ``rate * (1 + amplitude * sin(2*pi*t / period))``, integrated with a
    credit accumulator (one arrival per accumulated unit) — no random
    draws, so the same config always produces the same schedule.  A
    configured burst injects ``burst_sessions`` arrivals at the burst
    instant, on top of the sinusoid.  Exactly ``config.sessions``
    instants are returned, in non-decreasing order.
    """
    times: List[float] = []
    dt = 0.005
    credit = 0.0
    t = 0.0
    burst_pending = (
        config.burst_sessions if config.burst_at_s is not None else 0
    )
    while len(times) < config.sessions:
        if burst_pending and config.burst_at_s is not None and t >= config.burst_at_s:
            while burst_pending and len(times) < config.sessions:
                times.append(config.burst_at_s)
                burst_pending -= 1
        rate = config.arrival_rate_hz * (
            1.0
            + config.diurnal_amplitude
            * math.sin(2.0 * math.pi * t / config.diurnal_period_s)
        )
        credit += max(rate, 0.0) * dt
        while credit >= 1.0 and len(times) < config.sessions:
            times.append(t)
            credit -= 1.0
        t += dt
    return times


async def run_loadtest(
    host: str,
    port: int,
    config: Optional[LoadTestConfig] = None,
    traces: Optional[Sequence[Trace]] = None,
) -> LoadTestReport:
    """Drive the full closed loop against a running server.

    ``traces`` defaults to ``config.sessions`` generated traces from
    ``config.dataset``; when supplied explicitly, one session is run per
    trace (cycling the config's session count is the caller's business).
    """
    config = config if config is not None else LoadTestConfig()
    trace_list = list(traces) if traces is not None else _make_traces(config)
    if not trace_list:
        raise ValueError("need at least one trace")

    players = [
        _VirtualPlayer(
            f"session-{i:05d}",
            trace,
            config,
            predictor=(
                make_predictor(config.predictors[i % len(config.predictors)])
                if config.predictors
                else None
            ),
        )
        for i, trace in enumerate(trace_list)
    ]

    report = LoadTestReport()
    if config.open_loop:
        # Open loop: every session gets its own task, gated only by its
        # arrival instant — in-flight sessions are unbounded by design
        # (connections stay pooled, so the wire fan-out is still capped).
        schedule_config = (
            config
            if len(players) == config.sessions
            else replace(config, sessions=len(players))
        )
        arrivals = open_loop_arrivals(schedule_config)
        pool_size = (
            config.connections
            if config.connections is not None
            else config.concurrency
        )
        pool = _ClientPool(host, port, pool_size, config)
        started = time.perf_counter()
        try:
            results = await asyncio.gather(
                *(
                    _arriving_session(
                        pool, player, config, report, arrival, started
                    )
                    for player, arrival in zip(players, arrivals)
                ),
                return_exceptions=True,
            )
        finally:
            report.wall_s = time.perf_counter() - started
            await pool.close()
        for outcome in results:
            if isinstance(outcome, ServiceUnavailable):
                report.errors += 1
            elif isinstance(outcome, BaseException):
                raise outcome
        return report

    queue: "asyncio.Queue[_VirtualPlayer]" = asyncio.Queue()
    for player in players:
        queue.put_nowait(player)

    workers = min(config.concurrency, queue.qsize())
    pool_size = config.connections if config.connections is not None else workers
    pool = _ClientPool(host, port, pool_size, config)
    started = time.perf_counter()
    try:
        results = await asyncio.gather(
            *(
                _session_worker(pool, queue, config, report)
                for _ in range(workers)
            ),
            return_exceptions=True,
        )
    finally:
        report.wall_s = time.perf_counter() - started
        await pool.close()
    for outcome in results:
        if isinstance(outcome, ServiceUnavailable):
            report.errors += 1
        elif isinstance(outcome, BaseException):
            raise outcome
    return report


def run_loadtest_sync(
    host: str,
    port: int,
    config: Optional[LoadTestConfig] = None,
    traces: Optional[Sequence[Trace]] = None,
) -> LoadTestReport:
    """Blocking wrapper for CLI use."""
    return asyncio.run(run_loadtest(host, port, config, traces))
