"""Cross-session throughput prior, keyed by trace family.

Players on the same access technology see correlated capacity: a
session that identifies its *trace family* (an opaque client-chosen
key — "fcc", "hsdpa", a CDN pop, an ASN...) lets the service pool the
throughput samples of every session in that family into one aggregate
and hand the pooled estimate back as a **prior** a cold-starting player
can use before its own prediction window fills.

The aggregate is deliberately a :class:`~repro.core.histmerge.\
FixedBucketHistogram` over kbps rather than a running mean:

* integer bucket counts and the max merge **losslessly and
  order-independently**, so the cluster's ``/metrics`` aggregation can
  fold per-worker prior stores into exactly the aggregate one shared
  store would have held;
* the served estimate is a quantile of the bucket counts — derived only
  from integers plus the exact max, so the same samples produce the
  same prior no matter how they were scattered across workers;
* memory is O(buckets) per family regardless of sample volume.

Families are LRU-bounded exactly like the controller backends
(:mod:`repro.service.backends`): observation of a family moves it to
the back of the queue, and creating one past ``max_families`` evicts
the least recently observed.  An evicted family simply restarts cold —
the same contract a backend session has.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence

from ..core.histmerge import FixedBucketHistogram, merge_histogram_dicts

__all__ = [
    "SharedPriorStore",
    "ThroughputHistogram",
    "merge_prior_snapshots",
    "DEFAULT_PRIOR_BOUNDS_KBPS",
]

#: Upper bounds (kbps) of the default throughput buckets.  Spans the
#: Envivio ladder's working range (hundreds of kbps) through fast
#: broadband; the final bucket is implicit +inf.
DEFAULT_PRIOR_BOUNDS_KBPS = (
    100.0,
    200.0,
    350.0,
    500.0,
    750.0,
    1_000.0,
    1_500.0,
    2_000.0,
    3_000.0,
    4_500.0,
    6_000.0,
    10_000.0,
    20_000.0,
)

#: Served-estimate quantile: the family median — robust to the heavy
#: upper tail throughput samples carry, unlike the mean.
PRIOR_QUANTILE = 0.5


class ThroughputHistogram(FixedBucketHistogram):
    """Fixed-bucket histogram over kbps throughput samples."""

    __slots__ = ()

    key_suffix = "_kbps"
    non_negative = True
    value_name = "throughput"
    underflow_lower = 0.0

    def __init__(
        self, bounds_kbps: Sequence[float] = DEFAULT_PRIOR_BOUNDS_KBPS
    ) -> None:
        super().__init__(bounds_kbps)


class SharedPriorStore:
    """LRU-bounded per-family throughput aggregates.

    ``observe`` folds one sample into its family (creating or reviving
    the family as needed); ``estimate`` serves the family's pooled
    median without touching LRU order, so read traffic cannot keep a
    dead family alive.
    """

    def __init__(
        self,
        bounds_kbps: Sequence[float] = DEFAULT_PRIOR_BOUNDS_KBPS,
        max_families: int = 1024,
    ) -> None:
        if max_families < 1:
            raise ValueError("max_families must be >= 1")
        self._bounds = tuple(float(b) for b in bounds_kbps)
        # Validate the bounds once, eagerly.
        ThroughputHistogram(self._bounds)
        self.max_families = max_families
        self._families: "OrderedDict[str, ThroughputHistogram]" = OrderedDict()
        self.evictions = 0
        self.samples_total = 0

    # ------------------------------------------------------------------

    @property
    def families_active(self) -> int:
        return len(self._families)

    def family_names(self) -> tuple:
        return tuple(self._families)

    def observe(self, family: str, throughput_kbps: float) -> None:
        """Fold one throughput sample into the family's aggregate."""
        if not family:
            raise ValueError("family must be non-empty")
        if not throughput_kbps >= 0:
            raise ValueError("throughput_kbps must be >= 0")
        histogram = self._families.get(family)
        if histogram is None:
            histogram = ThroughputHistogram(self._bounds)
            while len(self._families) >= self.max_families:
                self._families.popitem(last=False)
                self.evictions += 1
            self._families[family] = histogram
        else:
            self._families.move_to_end(family)
        histogram.observe(throughput_kbps)
        self.samples_total += 1

    def estimate(self, family: str) -> Optional[float]:
        """The family's pooled median kbps; ``None`` when unseen."""
        histogram = self._families.get(family)
        if histogram is None or histogram.count == 0:
            return None
        return histogram.quantile(PRIOR_QUANTILE)

    def clear(self) -> None:
        self._families.clear()

    # ------------------------------------------------------------------
    # Serialization + merge — the cluster /metrics path
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The ``priors`` section of the ``/metrics`` document."""
        return {
            "families_active": self.families_active,
            "max_families": self.max_families,
            "evictions": self.evictions,
            "samples_total": self.samples_total,
            "families": {
                name: {
                    "estimate_kbps": self.estimate(name),
                    **histogram.to_dict(),
                }
                for name, histogram in sorted(self._families.items())
            },
        }


def merge_prior_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge per-worker :meth:`SharedPriorStore.snapshot` documents.

    Bucket counts sum family by family — lossless and order-independent,
    so the merged per-family estimate is exactly what one shared store
    holding every worker's samples would serve.  Counter fields sum;
    ``families_active`` counts the merged (union) family set.
    """
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    names = sorted({name for s in snapshots for name in s.get("families", {})})
    families: Dict[str, dict] = {}
    for name in names:
        slices = [
            s["families"][name]
            for s in snapshots
            if name in s.get("families", {})
        ]
        merged = merge_histogram_dicts(
            [{k: v for k, v in sl.items() if k != "estimate_kbps"} for sl in slices],
            ThroughputHistogram,
        )
        histogram = ThroughputHistogram.from_dict(merged)
        merged = {
            "estimate_kbps": (
                histogram.quantile(PRIOR_QUANTILE) if histogram.count else None
            ),
            **merged,
        }
        families[name] = merged
    return {
        "families_active": len(families),
        "max_families": max(int(s["max_families"]) for s in snapshots),
        "evictions": sum(int(s["evictions"]) for s in snapshots),
        "samples_total": sum(int(s["samples_total"]) for s in snapshots),
        "families": families,
    }
