"""Deterministic weighted A/B assignment of sessions to controller arms.

The service routes each session to one *arm* of a configured experiment
— a named controller plus a traffic weight.  Assignment must be a pure
function of ``(experiment, session_id)``: the same session lands on the
same arm on every request, on every worker of a cluster, and across
worker restarts, without any shared state or coordination.  That rules
out Python's builtin ``hash`` (randomised per process by
``PYTHONHASHSEED``); instead the session id is hashed with BLAKE2b into
a uniform point of ``[0, 1)`` and mapped through the arms' cumulative
weights.  The ``salt`` re-shuffles the whole population — bump it to
re-randomise an experiment without renaming sessions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "CONTROLLER_TABLE",
    "ExperimentArm",
    "ExperimentConfig",
    "parse_arms_spec",
]

#: The reserved controller name for the mmap/FastMPC table fast path —
#: arms on this controller keep the vectorized ``decide_batch`` lookup.
CONTROLLER_TABLE = "table"


@dataclass(frozen=True)
class ExperimentArm:
    """One experiment arm: a label, the controller it routes to, and a
    relative traffic weight.

    ``name`` is the label stamped on responses, metrics, and obs events;
    ``controller`` is either :data:`CONTROLLER_TABLE` or a
    :mod:`repro.abr.registry` algorithm name.  Two arms may share a
    controller (an A/A experiment) but never a name.
    """

    name: str
    controller: str = CONTROLLER_TABLE
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("arm name must be non-empty")
        if not self.controller:
            raise ValueError("arm controller must be non-empty")
        if not (self.weight > 0 and self.weight < float("inf")):
            raise ValueError("arm weight must be positive and finite")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "controller": self.controller,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "ExperimentArm":
        if not isinstance(payload, dict):
            raise ValueError("arm must be a JSON object")
        name = payload.get("name")
        if not isinstance(name, str):
            raise ValueError("arm name must be a string")
        controller = payload.get("controller", name)
        if not isinstance(controller, str):
            raise ValueError("arm controller must be a string")
        weight = payload.get("weight", 1.0)
        if isinstance(weight, bool) or not isinstance(weight, (int, float)):
            raise ValueError("arm weight must be a number")
        return cls(name=name, controller=controller, weight=float(weight))


@dataclass(frozen=True)
class ExperimentConfig:
    """A weighted set of arms plus the hashing salt.

    Assignment depends on the arms' *order* (the cumulative-weight walk
    below), so configs must be shipped whole — which they are: the CLI,
    ``POST /v1/experiment``, and the cluster's pickled worker specs all
    carry the full ordered config.
    """

    arms: Tuple[ExperimentArm, ...]
    salt: str = ""

    def __post_init__(self) -> None:
        arms = tuple(self.arms)
        object.__setattr__(self, "arms", arms)
        if not arms:
            raise ValueError("an experiment needs at least one arm")
        names = [arm.name for arm in arms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate arm names in {names}")

    @property
    def total_weight(self) -> float:
        return sum(arm.weight for arm in self.arms)

    def assign(self, session_id: str) -> ExperimentArm:
        """The arm this session belongs to — deterministic, unweighted by
        any runtime state, identical in every process."""
        point = _unit_point(self.salt, session_id) * self.total_weight
        cumulative = 0.0
        for arm in self.arms:
            cumulative += arm.weight
            if point < cumulative:
                return arm
        return self.arms[-1]  # point == total under float rounding

    def to_dict(self) -> dict:
        return {
            "arms": [arm.to_dict() for arm in self.arms],
            "salt": self.salt,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "ExperimentConfig":
        if not isinstance(payload, dict):
            raise ValueError("experiment must be a JSON object")
        raw_arms = payload.get("arms")
        if not isinstance(raw_arms, list) or not raw_arms:
            raise ValueError("experiment arms must be a non-empty list")
        salt = payload.get("salt", "")
        if not isinstance(salt, str):
            raise ValueError("experiment salt must be a string")
        return cls(
            arms=tuple(ExperimentArm.from_dict(a) for a in raw_arms),
            salt=salt,
        )


def _unit_point(salt: str, session_id: str) -> float:
    """A uniform, process-independent point of ``[0, 1)`` for a session."""
    digest = hashlib.blake2b(
        session_id.encode("utf-8"),
        digest_size=8,
        key=salt.encode("utf-8")[:64],
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def parse_arms_spec(spec: str, salt: str = "") -> ExperimentConfig:
    """Parse the CLI arms syntax into a config.

    ``spec`` is comma-separated ``controller[=weight]`` entries, e.g.
    ``table=2,bola,bb=0.5``; an entry may name its arm separately from
    the controller as ``label:controller[=weight]`` (for A/A arms).
    """
    arms: List[ExperimentArm] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        weight = 1.0
        if "=" in entry:
            entry, raw_weight = entry.rsplit("=", 1)
            try:
                weight = float(raw_weight)
            except ValueError:
                raise ValueError(f"bad arm weight {raw_weight!r}") from None
        if ":" in entry:
            name, controller = entry.split(":", 1)
        else:
            name = controller = entry
        arms.append(
            ExperimentArm(name=name.strip(), controller=controller.strip(), weight=weight)
        )
    if not arms:
        raise ValueError(f"no arms in spec {spec!r}")
    return ExperimentConfig(arms=tuple(arms), salt=salt)
