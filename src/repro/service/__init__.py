"""``repro.service`` — the ABR decision service (deployment direction).

Section 5's point is that FastMPC makes the MPC "Optimize" step cheap
enough to run per-request in production; this package takes the next
step the ROADMAP asks for and puts the table behind a serving boundary:

* :mod:`protocol` — the session-keyed request/response wire format
  carrying ``(buffer_s, prev_level, predicted_kbps, past_errors)``.
* :mod:`metrics` — request counters, decision-source breakdown and
  fixed-bucket latency histograms, exported as JSON from ``/metrics``.
* :mod:`server` — :class:`DecisionService` (transport-free decision
  logic with a rate-based fallback and per-lookup budgets) and
  :class:`DecisionServer`, a stdlib-only asyncio HTTP/1.1 front end
  with warm/cold table swapping that never drops connections.
* :mod:`experiment` — deterministic weighted A/B assignment of sessions
  to named controller arms (pure hash of the session id).
* :mod:`backends` — stateful per-session controller instances (the
  registry zoo: BOLA, BBA-0/1, DAS-IP, ...) behind the service, with
  LRU + idle eviction.
* :mod:`prior` — the cross-session throughput prior: LRU-bounded
  per-trace-family histograms fed by family-keyed requests, served
  back as ``prior_kbps`` and merged losslessly cluster-wide.
* :mod:`client` — a keep-alive asyncio client speaking the protocol.
* :mod:`loadgen` — a closed-loop, trace-driven load generator that
  replays virtual player sessions against a running server.
* :mod:`cluster` — :class:`ClusterSupervisor`, the multi-process
  scale-out tier: N workers share one published (mmap-backed) table and
  one ``SO_REUSEPORT`` port, supervised with restart backoff and
  cluster-wide aggregated ``/metrics`` (see ``docs/scaling.md``).

Everything here is standard library + the existing ``repro`` core; the
only numerics are one table lookup (or the rate-based fallback) per
request.
"""

from .protocol import (
    PROTOCOL_VERSION,
    DecisionRequest,
    DecisionResponse,
    ProtocolError,
)
from .backends import AlgorithmBackend
from .experiment import (
    CONTROLLER_TABLE,
    ExperimentArm,
    ExperimentConfig,
    parse_arms_spec,
)
from .metrics import LatencyHistogram, ServiceMetrics
from .prior import SharedPriorStore, merge_prior_snapshots
from .server import DecisionServer, DecisionService, ServiceConfig
from .client import DecisionClient, RetryPolicy, ServiceClient, ServiceUnavailable
from .loadgen import LoadTestConfig, LoadTestReport, run_loadtest, run_loadtest_sync
from .metrics import merge_metrics_snapshots
from .cluster import (
    ClusterConfig,
    ClusterError,
    ClusterSupervisor,
    supports_reuse_port,
)

__all__ = [
    "PROTOCOL_VERSION",
    "DecisionRequest",
    "DecisionResponse",
    "ProtocolError",
    "AlgorithmBackend",
    "CONTROLLER_TABLE",
    "ExperimentArm",
    "ExperimentConfig",
    "parse_arms_spec",
    "LatencyHistogram",
    "ServiceMetrics",
    "SharedPriorStore",
    "merge_prior_snapshots",
    "ServiceConfig",
    "DecisionService",
    "DecisionServer",
    "DecisionClient",
    "RetryPolicy",
    "ServiceClient",
    "ServiceUnavailable",
    "LoadTestConfig",
    "LoadTestReport",
    "run_loadtest",
    "run_loadtest_sync",
    "merge_metrics_snapshots",
    "ClusterConfig",
    "ClusterError",
    "ClusterSupervisor",
    "supports_reuse_port",
]
