"""Wire format of the decision service.

One request per bitrate decision, JSON over HTTP.  The request carries
exactly the state FastMPC's table is keyed on — the Section 3.3 inputs
``(B_k, R_{k-1}, C_hat)`` — plus the recent prediction errors RobustMPC
needs for its ``C_hat / (1 + err)`` lower bound, and a ``session_id`` so
the server can attribute decisions and per-session counters without
holding player state.

Responses always come back well-formed: when the server cannot serve a
table decision (missing table, malformed request, lookup over budget) it
answers with the rate-based fallback and sets ``degraded`` — clients
never see a hard error for a recoverable condition.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "DecisionRequest",
    "DecisionResponse",
    "SOURCE_TABLE",
    "SOURCE_FALLBACK",
]

PROTOCOL_VERSION = 1

#: Decision provenance values carried in every response.
SOURCE_TABLE = "table"
SOURCE_FALLBACK = "fallback"

_MAX_PAST_ERRORS = 64  # more than any sensible robustness window


class ProtocolError(ValueError):
    """A request/response payload that does not follow the protocol."""


def _require_number(payload: dict, key: str) -> float:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key!r} must be a number, got {value!r}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ProtocolError(f"{key!r} must be finite")
    return value


@dataclass(frozen=True)
class DecisionRequest:
    """One bitrate decision query.

    Parameters
    ----------
    session_id:
        Opaque stream-session key; used for telemetry attribution only.
    buffer_s:
        Current playback buffer occupancy ``B_k`` in seconds.
    prev_level:
        Ladder index of the previously fetched chunk, ``None`` before
        the first chunk (the table is queried with level 0, exactly like
        :class:`~repro.core.fastmpc.FastMPCController`).
    predicted_kbps:
        Throughput prediction ``C_hat`` (the player's harmonic mean).
    past_errors:
        Recent signed percentage prediction errors; when non-empty the
        server queries the table with the RobustMPC lower bound.
    """

    session_id: str
    buffer_s: float
    predicted_kbps: float
    prev_level: Optional[int] = None
    past_errors: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ProtocolError("session_id must be non-empty")
        if self.buffer_s < 0:
            raise ProtocolError("buffer_s must be >= 0")
        if self.predicted_kbps <= 0:
            raise ProtocolError("predicted_kbps must be positive")
        if self.prev_level is not None and self.prev_level < 0:
            raise ProtocolError("prev_level must be >= 0")
        if len(self.past_errors) > _MAX_PAST_ERRORS:
            raise ProtocolError(
                f"past_errors longer than {_MAX_PAST_ERRORS} entries"
            )

    def to_dict(self) -> dict:
        payload = {
            "v": PROTOCOL_VERSION,
            "session_id": self.session_id,
            "buffer_s": self.buffer_s,
            "predicted_kbps": self.predicted_kbps,
        }
        if self.prev_level is not None:
            payload["prev_level"] = self.prev_level
        if self.past_errors:
            payload["past_errors"] = list(self.past_errors)
        return payload

    def to_json(self) -> bytes:
        return json.dumps(self.to_dict(), separators=(",", ":")).encode()

    @classmethod
    def from_dict(cls, payload: object) -> "DecisionRequest":
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        version = payload.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ProtocolError(f"unsupported protocol version {version!r}")
        session_id = payload.get("session_id")
        if not isinstance(session_id, str) or not session_id:
            raise ProtocolError("session_id must be a non-empty string")
        prev_level = payload.get("prev_level")
        if prev_level is not None:
            if isinstance(prev_level, bool) or not isinstance(prev_level, int):
                raise ProtocolError("prev_level must be an integer")
        raw_errors = payload.get("past_errors", [])
        if not isinstance(raw_errors, list):
            raise ProtocolError("past_errors must be a list")
        errors = []
        for e in raw_errors:
            if isinstance(e, bool) or not isinstance(e, (int, float)):
                raise ProtocolError("past_errors entries must be numbers")
            errors.append(float(e))
        return cls(
            session_id=session_id,
            buffer_s=_require_number(payload, "buffer_s"),
            predicted_kbps=_require_number(payload, "predicted_kbps"),
            prev_level=prev_level,
            past_errors=tuple(errors),
        )

    @classmethod
    def from_json(cls, blob: bytes) -> "DecisionRequest":
        try:
            payload = json.loads(blob)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None
        return cls.from_dict(payload)


@dataclass(frozen=True)
class DecisionResponse:
    """The server's answer: a ladder level plus provenance.

    ``source`` records where the decision came from (``"table"`` or
    ``"fallback"``); ``degraded`` is True whenever anything other than a
    healthy in-budget table lookup produced the decision, with ``reason``
    naming the cause (``no-table`` / ``malformed`` / ``over-budget``).
    """

    session_id: str
    level_index: int
    bitrate_kbps: float
    source: str
    degraded: bool = False
    reason: Optional[str] = None
    server_latency_us: float = 0.0

    def __post_init__(self) -> None:
        if self.level_index < 0:
            raise ProtocolError("level_index must be >= 0")
        if self.source not in (SOURCE_TABLE, SOURCE_FALLBACK):
            raise ProtocolError(f"unknown decision source {self.source!r}")

    def to_dict(self) -> dict:
        payload = {
            "v": PROTOCOL_VERSION,
            "session_id": self.session_id,
            "level_index": self.level_index,
            "bitrate_kbps": self.bitrate_kbps,
            "source": self.source,
            "degraded": self.degraded,
            "server_latency_us": round(self.server_latency_us, 3),
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        return payload

    def to_json(self) -> bytes:
        return json.dumps(self.to_dict(), separators=(",", ":")).encode()

    @classmethod
    def from_json(cls, blob: bytes) -> "DecisionResponse":
        try:
            payload = json.loads(blob)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"response body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ProtocolError("response body must be a JSON object")
        try:
            return cls(
                session_id=payload["session_id"],
                level_index=int(payload["level_index"]),
                bitrate_kbps=float(payload["bitrate_kbps"]),
                source=payload["source"],
                degraded=bool(payload.get("degraded", False)),
                reason=payload.get("reason"),
                server_latency_us=float(payload.get("server_latency_us", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed response payload: {exc}") from None
