"""Wire format of the decision service.

One request per bitrate decision over HTTP, in one of two on-the-wire
encodings.  The request carries exactly the state FastMPC's table is
keyed on — the Section 3.3 inputs ``(B_k, R_{k-1}, C_hat)`` — plus the
recent prediction errors RobustMPC needs for its ``C_hat / (1 + err)``
lower bound, and a ``session_id`` so the server can attribute decisions
and per-session counters without holding player state.

**JSON** (the default) is the debuggable, curl-able encoding.  **Binary**
is the opt-in fast path: struct-packed little-endian frames that a client
selects per connection simply by POSTing with the binary content type
(:data:`CONTENT_TYPE_BINARY`).  A binary-aware server answers in kind; a
server that predates the binary protocol answers the usual degraded JSON
fallback, which the client detects from the response content type and
downgrades the connection to JSON — no separate handshake round-trip.
Binary frames natively carry *batches* (a record count then that many
records), which is what lets a batching client amortise a whole HTTP
exchange over many decisions.  Field-level semantics are identical in
both encodings; the only intended difference is that binary carries
``server_latency_us`` at full float64 precision where JSON rounds it to
3 decimals.

Responses always come back well-formed: when the server cannot serve a
table decision (missing table, malformed request, lookup over budget) it
answers with the rate-based fallback and sets ``degraded`` — clients
never see a hard error for a recoverable condition.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "DecisionRequest",
    "DecisionResponse",
    "SOURCE_TABLE",
    "SOURCE_FALLBACK",
    "SOURCE_CONTROLLER",
    "CONTENT_TYPE_JSON",
    "CONTENT_TYPE_BINARY",
    "MAX_BATCH_RECORDS",
    "encode_request_batch",
    "decode_request_batch",
    "encode_response_batch",
    "decode_response_batch",
]

PROTOCOL_VERSION = 1

#: HTTP content types selecting the wire encoding, per connection.
CONTENT_TYPE_JSON = "application/json"
CONTENT_TYPE_BINARY = "application/x-repro-decision"

#: Decision provenance values carried in every response.
SOURCE_TABLE = "table"
SOURCE_FALLBACK = "fallback"
SOURCE_CONTROLLER = "controller"

_MAX_PAST_ERRORS = 64  # more than any sensible robustness window


class ProtocolError(ValueError):
    """A request/response payload that does not follow the protocol."""


def _require_number(payload: dict, key: str) -> float:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{key!r} must be a number, got {value!r}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ProtocolError(f"{key!r} must be finite")
    return value


@dataclass(frozen=True)
class DecisionRequest:
    """One bitrate decision query.

    Parameters
    ----------
    session_id:
        Opaque stream-session key; used for telemetry attribution only.
    buffer_s:
        Current playback buffer occupancy ``B_k`` in seconds.
    prev_level:
        Ladder index of the previously fetched chunk, ``None`` before
        the first chunk (the table is queried with level 0, exactly like
        :class:`~repro.core.fastmpc.FastMPCController`).
    predicted_kbps:
        Throughput prediction ``C_hat`` (the player's harmonic mean).
    past_errors:
        Recent signed percentage prediction errors; when non-empty the
        server queries the table with the RobustMPC lower bound.
    family:
        Optional trace-family key (access technology, CDN pop...); when
        set, the server folds ``predicted_kbps`` into the family's
        shared prior (:mod:`repro.service.prior`) and the response
        carries the pooled ``prior_kbps`` estimate.  JSON-only: the
        binary encoding predates the field and rejects it loudly rather
        than dropping it silently.
    """

    session_id: str
    buffer_s: float
    predicted_kbps: float
    prev_level: Optional[int] = None
    past_errors: Tuple[float, ...] = field(default_factory=tuple)
    family: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ProtocolError("session_id must be non-empty")
        if self.buffer_s < 0:
            raise ProtocolError("buffer_s must be >= 0")
        if self.predicted_kbps <= 0:
            raise ProtocolError("predicted_kbps must be positive")
        if self.prev_level is not None and self.prev_level < 0:
            raise ProtocolError("prev_level must be >= 0")
        if len(self.past_errors) > _MAX_PAST_ERRORS:
            raise ProtocolError(
                f"past_errors longer than {_MAX_PAST_ERRORS} entries"
            )
        if self.family is not None and not self.family:
            raise ProtocolError("family must be non-empty when given")

    def to_dict(self) -> dict:
        payload = {
            "v": PROTOCOL_VERSION,
            "session_id": self.session_id,
            "buffer_s": self.buffer_s,
            "predicted_kbps": self.predicted_kbps,
        }
        if self.prev_level is not None:
            payload["prev_level"] = self.prev_level
        if self.past_errors:
            payload["past_errors"] = list(self.past_errors)
        if self.family is not None:
            payload["family"] = self.family
        return payload

    def to_json(self) -> bytes:
        return json.dumps(self.to_dict(), separators=(",", ":")).encode()

    @classmethod
    def from_dict(cls, payload: object) -> "DecisionRequest":
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        version = payload.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ProtocolError(f"unsupported protocol version {version!r}")
        session_id = payload.get("session_id")
        if not isinstance(session_id, str) or not session_id:
            raise ProtocolError("session_id must be a non-empty string")
        prev_level = payload.get("prev_level")
        if prev_level is not None:
            if isinstance(prev_level, bool) or not isinstance(prev_level, int):
                raise ProtocolError("prev_level must be an integer")
        raw_errors = payload.get("past_errors", [])
        if not isinstance(raw_errors, list):
            raise ProtocolError("past_errors must be a list")
        errors = []
        for e in raw_errors:
            if isinstance(e, bool) or not isinstance(e, (int, float)):
                raise ProtocolError("past_errors entries must be numbers")
            errors.append(float(e))
        family = payload.get("family")
        if family is not None and (not isinstance(family, str) or not family):
            raise ProtocolError("family must be a non-empty string")
        return cls(
            session_id=session_id,
            buffer_s=_require_number(payload, "buffer_s"),
            predicted_kbps=_require_number(payload, "predicted_kbps"),
            prev_level=prev_level,
            past_errors=tuple(errors),
            family=family,
        )

    @classmethod
    def from_json(cls, blob: bytes) -> "DecisionRequest":
        try:
            payload = json.loads(blob)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    def to_binary(self) -> bytes:
        """This request as a single-record binary frame."""
        return encode_request_batch((self,))

    @classmethod
    def from_binary(cls, blob: bytes) -> "DecisionRequest":
        """Decode a single-record binary frame."""
        requests = decode_request_batch(blob)
        if len(requests) != 1:
            raise ProtocolError(
                f"expected one request record, frame has {len(requests)}"
            )
        return requests[0]


@dataclass(frozen=True)
class DecisionResponse:
    """The server's answer: a ladder level plus provenance.

    ``source`` records where the decision came from (``"table"``, a
    stateful ``"controller"`` backend, or ``"fallback"``); ``degraded``
    is True whenever anything other than a healthy in-budget decision
    produced the answer, with ``reason`` naming the cause (``no-table``
    / ``malformed`` / ``over-budget``).  ``arm`` is the experiment arm
    the session is assigned to, ``None`` when no experiment is running.
    ``prior_kbps`` is the pooled cross-session throughput prior of the
    request's trace family (``None`` when the request named no family or
    the family holds no earlier samples); JSON-only, like the request's
    ``family`` field.
    """

    session_id: str
    level_index: int
    bitrate_kbps: float
    source: str
    degraded: bool = False
    reason: Optional[str] = None
    server_latency_us: float = 0.0
    arm: Optional[str] = None
    prior_kbps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.level_index < 0:
            raise ProtocolError("level_index must be >= 0")
        if self.source not in (SOURCE_TABLE, SOURCE_FALLBACK, SOURCE_CONTROLLER):
            raise ProtocolError(f"unknown decision source {self.source!r}")

    def to_dict(self) -> dict:
        payload = {
            "v": PROTOCOL_VERSION,
            "session_id": self.session_id,
            "level_index": self.level_index,
            "bitrate_kbps": self.bitrate_kbps,
            "source": self.source,
            "degraded": self.degraded,
            "server_latency_us": round(self.server_latency_us, 3),
        }
        if self.reason is not None:
            payload["reason"] = self.reason
        if self.arm is not None:
            payload["arm"] = self.arm
        if self.prior_kbps is not None:
            payload["prior_kbps"] = self.prior_kbps
        return payload

    def to_json(self) -> bytes:
        return json.dumps(self.to_dict(), separators=(",", ":")).encode()

    @classmethod
    def from_json(cls, blob: bytes) -> "DecisionResponse":
        try:
            payload = json.loads(blob)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"response body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ProtocolError("response body must be a JSON object")
        try:
            return cls(
                session_id=payload["session_id"],
                level_index=int(payload["level_index"]),
                bitrate_kbps=float(payload["bitrate_kbps"]),
                source=payload["source"],
                degraded=bool(payload.get("degraded", False)),
                reason=payload.get("reason"),
                server_latency_us=float(payload.get("server_latency_us", 0.0)),
                arm=payload.get("arm"),
                prior_kbps=(
                    float(payload["prior_kbps"])
                    if payload.get("prior_kbps") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed response payload: {exc}") from None

    def to_binary(self) -> bytes:
        """This response as a single-record binary frame."""
        return encode_response_batch((self,))

    @classmethod
    def from_binary(cls, blob: bytes) -> "DecisionResponse":
        """Decode a single-record binary frame."""
        responses = decode_response_batch(blob)
        if len(responses) != 1:
            raise ProtocolError(
                f"expected one response record, frame has {len(responses)}"
            )
        return responses[0]


# ----------------------------------------------------------------------
# Binary frames
# ----------------------------------------------------------------------
#
# Frame = header + `count` records, little-endian, unaligned:
#
#   request header   "DQ" u8 version  u8 flags  u16 count
#   request record   u8 sid_len, sid utf-8,
#                    f64 buffer_s, f64 predicted_kbps,
#                    i16 prev_level (-1 = none), u8 num_errors,
#                    f64 x num_errors past_errors
#
#   response header  "DS" u8 version  u8 flags  u16 count
#   response record  u8 sid_len, sid utf-8,
#                    u16 level_index, f64 bitrate_kbps,
#                    u8 source, u8 degraded, u8 reason,
#                    f64 server_latency_us,
#                    [u8 len + utf-8 reason string iff reason == 255]
#                    [u8 len + utf-8 arm iff flags & 0x01; len 0 = no arm]
#
# Request `flags` is reserved (must be 0).  Response `flags` bit 0x01
# announces that every record carries a trailing experiment-arm string
# (zero length = unassigned), so arm-free frames cost nothing and old
# decoders reject armed frames loudly instead of misparsing them.
# `source` is 0=table 1=fallback 2=controller.  `reason` is a code for
# the small closed set of degradation reasons the server emits; 255
# escapes to an explicit string so unknown reasons survive the encoding
# instead of being dropped.

#: Upper bound on records per frame — a u16 carries up to 65535, but a
#: batch beyond this is a client bug, not a use case.
MAX_BATCH_RECORDS = 4096

_REQ_HEADER = struct.Struct("<2sBBH")
_REQ_FIXED = struct.Struct("<ddhB")
_RESP_HEADER = struct.Struct("<2sBBH")
_RESP_FIXED = struct.Struct("<HdBBBd")
_REQ_MAGIC = b"DQ"
_RESP_MAGIC = b"DS"

_SOURCE_CODES = {SOURCE_TABLE: 0, SOURCE_FALLBACK: 1, SOURCE_CONTROLLER: 2}
_SOURCE_NAMES = {v: k for k, v in _SOURCE_CODES.items()}
#: Response-frame flag: every record ends with a u8-length arm string.
_FLAG_ARMS = 0x01
#: The degradation reasons the server emits (see repro.service.server).
_REASON_CODES = {None: 0, "no-table": 1, "malformed": 2, "over-budget": 3}
_REASON_NAMES = {v: k for k, v in _REASON_CODES.items()}
_REASON_OTHER = 255


def _pack_sid(session_id: str) -> bytes:
    sid = session_id.encode("utf-8")
    if len(sid) > 255:
        raise ProtocolError("session_id longer than 255 bytes")
    return struct.pack("<B", len(sid)) + sid


def _unpack_str(blob, offset: int, what: str) -> Tuple[str, int]:
    try:
        (length,) = struct.unpack_from("<B", blob, offset)
        raw = bytes(blob[offset + 1 : offset + 1 + length])
        if len(raw) != length:
            raise struct.error("short read")
    except struct.error:
        raise ProtocolError(f"truncated frame while reading {what}") from None
    try:
        return raw.decode("utf-8"), offset + 1 + length
    except UnicodeDecodeError:
        raise ProtocolError(f"{what} is not valid UTF-8") from None


def _check_header(
    blob, magic: bytes, header: struct.Struct, what: str, allowed_flags: int = 0
) -> Tuple[int, int]:
    try:
        got_magic, version, flags, count = header.unpack_from(blob, 0)
    except struct.error:
        raise ProtocolError(f"truncated {what} frame header") from None
    if got_magic != magic:
        raise ProtocolError(f"not a binary {what} frame")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    if flags & ~allowed_flags:
        raise ProtocolError(f"unknown {what} frame flags {flags:#x}")
    if not 1 <= count <= MAX_BATCH_RECORDS:
        raise ProtocolError(
            f"{what} frame record count {count} outside 1..{MAX_BATCH_RECORDS}"
        )
    return count, flags


def encode_request_batch(requests: Sequence[DecisionRequest]) -> bytes:
    """Pack requests into one binary frame (1..MAX_BATCH_RECORDS records)."""
    if not 1 <= len(requests) <= MAX_BATCH_RECORDS:
        raise ProtocolError(
            f"batch of {len(requests)} outside 1..{MAX_BATCH_RECORDS}"
        )
    parts = [_REQ_HEADER.pack(_REQ_MAGIC, PROTOCOL_VERSION, 0, len(requests))]
    for request in requests:
        if request.family is not None:
            # Refuse rather than drop: the binary frame has no family
            # field, and silently losing it would disable the shared
            # prior without any signal.  Family-keyed sessions use JSON.
            raise ProtocolError("family rides the JSON encoding only")
        parts.append(_pack_sid(request.session_id))
        prev = -1 if request.prev_level is None else request.prev_level
        if prev > 32767:
            raise ProtocolError("prev_level too large for the binary frame")
        errors = request.past_errors
        parts.append(
            _REQ_FIXED.pack(
                request.buffer_s, request.predicted_kbps, prev, len(errors)
            )
        )
        if errors:
            parts.append(struct.pack(f"<{len(errors)}d", *errors))
    return b"".join(parts)


def decode_request_batch(blob) -> List[DecisionRequest]:
    """Inverse of :func:`encode_request_batch`, with full validation.

    Decoded requests pass the same checks as the JSON path (finite
    buffer/prediction, non-empty session, bounded error window); a
    truncated or over-long frame raises :class:`ProtocolError`.
    """
    count, _ = _check_header(blob, _REQ_MAGIC, _REQ_HEADER, "request")
    offset = _REQ_HEADER.size
    requests: List[DecisionRequest] = []
    for _ in range(count):
        session_id, offset = _unpack_str(blob, offset, "session_id")
        try:
            buffer_s, predicted_kbps, prev, num_errors = _REQ_FIXED.unpack_from(
                blob, offset
            )
            offset += _REQ_FIXED.size
            errors = struct.unpack_from(f"<{num_errors}d", blob, offset)
            offset += 8 * num_errors
        except struct.error:
            raise ProtocolError("truncated request frame") from None
        for name, value in (("buffer_s", buffer_s), ("predicted_kbps", predicted_kbps)):
            if value != value or value in (float("inf"), float("-inf")):
                raise ProtocolError(f"{name!r} must be finite")
        requests.append(
            DecisionRequest(
                session_id=session_id,
                buffer_s=buffer_s,
                predicted_kbps=predicted_kbps,
                prev_level=None if prev == -1 else prev,
                past_errors=errors,
            )
        )
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after {count} request record(s)"
        )
    return requests


def encode_response_batch(responses: Sequence[DecisionResponse]) -> bytes:
    """Pack responses into one binary frame, order-preserving."""
    if not 1 <= len(responses) <= MAX_BATCH_RECORDS:
        raise ProtocolError(
            f"batch of {len(responses)} outside 1..{MAX_BATCH_RECORDS}"
        )
    flags = _FLAG_ARMS if any(r.arm is not None for r in responses) else 0
    parts = [
        _RESP_HEADER.pack(_RESP_MAGIC, PROTOCOL_VERSION, flags, len(responses))
    ]
    for response in responses:
        if response.prior_kbps is not None:
            raise ProtocolError("prior_kbps rides the JSON encoding only")
        parts.append(_pack_sid(response.session_id))
        if response.level_index > 65535:
            raise ProtocolError("level_index too large for the binary frame")
        reason_code = _REASON_CODES.get(response.reason, _REASON_OTHER)
        parts.append(
            _RESP_FIXED.pack(
                response.level_index,
                response.bitrate_kbps,
                _SOURCE_CODES[response.source],
                int(response.degraded),
                reason_code,
                response.server_latency_us,
            )
        )
        if reason_code == _REASON_OTHER:
            reason = response.reason or ""
            raw = reason.encode("utf-8")
            if len(raw) > 255:
                raise ProtocolError("reason string longer than 255 bytes")
            parts.append(struct.pack("<B", len(raw)) + raw)
        if flags & _FLAG_ARMS:
            raw = (response.arm or "").encode("utf-8")
            if len(raw) > 255:
                raise ProtocolError("arm name longer than 255 bytes")
            parts.append(struct.pack("<B", len(raw)) + raw)
    return b"".join(parts)


def decode_response_batch(blob) -> List[DecisionResponse]:
    """Inverse of :func:`encode_response_batch`, with full validation."""
    count, flags = _check_header(
        blob, _RESP_MAGIC, _RESP_HEADER, "response", allowed_flags=_FLAG_ARMS
    )
    offset = _RESP_HEADER.size
    responses: List[DecisionResponse] = []
    for _ in range(count):
        session_id, offset = _unpack_str(blob, offset, "session_id")
        try:
            (
                level_index,
                bitrate_kbps,
                source_code,
                degraded,
                reason_code,
                latency_us,
            ) = _RESP_FIXED.unpack_from(blob, offset)
            offset += _RESP_FIXED.size
        except struct.error:
            raise ProtocolError("truncated response frame") from None
        if source_code not in _SOURCE_NAMES:
            raise ProtocolError(f"unknown decision source code {source_code}")
        if reason_code == _REASON_OTHER:
            reason, offset = _unpack_str(blob, offset, "reason")
        elif reason_code in _REASON_NAMES:
            reason = _REASON_NAMES[reason_code]
        else:
            raise ProtocolError(f"unknown reason code {reason_code}")
        arm: Optional[str] = None
        if flags & _FLAG_ARMS:
            arm, offset = _unpack_str(blob, offset, "arm")
            arm = arm or None
        responses.append(
            DecisionResponse(
                session_id=session_id,
                level_index=level_index,
                bitrate_kbps=bitrate_kbps,
                source=_SOURCE_NAMES[source_code],
                degraded=bool(degraded),
                reason=reason,
                server_latency_us=latency_us,
                arm=arm,
            )
        )
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after {count} response record(s)"
        )
    return responses
