"""Stateful controller backends behind the decision service.

The mmap FastMPC table is stateless per request — one lookup, no memory
— so the service can treat every query independently.  Everything else
in the zoo (:mod:`repro.abr.registry`) is a *session*: BOLA carries its
prepared utilities, rate-based controllers carry their predictor
windows, DAS-IP both.  :class:`AlgorithmBackend` owns those per-session
instances, keyed by ``session_id``, with LRU capacity eviction plus
idle-age eviction driven by the server's watchdog timer.

The backend feeds each request's ``predicted_kbps`` to the algorithm's
predictors as a plain throughput observation before deciding, so
controllers that smooth their own estimate (harmonic windows, error
trackers) see the client's measurement stream, one sample per chunk —
the same contract the simulator's ``on_download_complete`` provides.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from ..abr import registry
from ..abr.base import ABRAlgorithm, PlayerObservation, SessionConfig
from ..video.manifest import BitrateLadder, VideoManifest

__all__ = ["AlgorithmBackend", "BackendSession"]

#: Synthetic CBR manifest length the backend cycles chunk indices over.
#: Service requests do not carry a chunk index, so the backend counts
#: decisions per session and wraps — on a CBR manifest every chunk looks
#: identical, making the wrap invisible to the controllers.
_BACKEND_CHUNKS = 256


@dataclass
class BackendSession:
    """One live session's controller instance and bookkeeping."""

    algorithm: ABRAlgorithm
    chunks: int = 0
    last_active: float = 0.0


class AlgorithmBackend:
    """Per-session instances of one registry controller.

    Sessions are created lazily on first sight of a ``session_id`` and
    retired two ways: least-recently-used eviction once ``max_sessions``
    is reached, and idle-age eviction via :meth:`evict_idle` (wired to
    the server's reap watchdog).  Both are safe mid-stream — a returning
    evicted session simply restarts from a fresh controller, exactly
    like a player rebuilding state after a CDN failover.
    """

    def __init__(
        self,
        controller: str,
        ladder_kbps: Sequence[float],
        *,
        chunk_duration_s: float = 4.0,
        buffer_capacity_s: float = 30.0,
        max_sessions: int = 4096,
        idle_timeout_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        # Fail at construction, not first request, on an unknown name.
        registry.create(controller)
        self.controller = controller
        self.max_sessions = max_sessions
        self.idle_timeout_s = idle_timeout_s
        self._clock = clock
        self._manifest = VideoManifest.cbr(
            chunk_duration_s,
            BitrateLadder(tuple(ladder_kbps)),
            _BACKEND_CHUNKS,
            title=f"service-backend:{controller}",
        )
        self._config = SessionConfig(buffer_capacity_s=buffer_capacity_s)
        self._sessions: "OrderedDict[str, BackendSession]" = OrderedDict()
        self.evictions_lru = 0
        self.evictions_idle = 0

    # ------------------------------------------------------------------

    @property
    def sessions_active(self) -> int:
        return len(self._sessions)

    def decide(
        self,
        session_id: str,
        buffer_s: float,
        prev_level: Optional[int],
        predicted_kbps: float,
    ) -> int:
        """One bitrate decision for this session's controller."""
        session = self._sessions.get(session_id)
        if session is None:
            session = self._create_session()
            while len(self._sessions) >= self.max_sessions:
                self._sessions.popitem(last=False)
                self.evictions_lru += 1
            self._sessions[session_id] = session
        else:
            self._sessions.move_to_end(session_id)
        session.last_active = self._clock()

        # The client's estimate is the controller's throughput sample.
        for predictor in session.algorithm.predictors():
            predictor.observe_kbps(predicted_kbps)
        buffer_s = min(buffer_s, self._config.buffer_capacity_s)
        if prev_level is not None:
            prev_level = min(prev_level, len(self._manifest.ladder) - 1)
        observation = PlayerObservation(
            chunk_index=session.chunks % _BACKEND_CHUNKS,
            buffer_level_s=buffer_s,
            prev_level_index=prev_level,
            wall_time_s=session.chunks * self._manifest.chunk_duration_s,
            playback_started=session.chunks > 0,
        )
        level = session.algorithm.select_bitrate(observation)
        if not 0 <= level < len(self._manifest.ladder):
            raise ValueError(
                f"controller {self.controller!r} returned invalid level {level}"
            )
        session.chunks += 1
        return level

    def evict_idle(self, now: Optional[float] = None) -> int:
        """Drop sessions idle past the timeout; returns how many died."""
        now = self._clock() if now is None else now
        stale = [
            sid
            for sid, session in self._sessions.items()
            if now - session.last_active > self.idle_timeout_s
        ]
        for sid in stale:
            del self._sessions[sid]
        self.evictions_idle += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._sessions.clear()

    # ------------------------------------------------------------------

    def _create_session(self) -> BackendSession:
        algorithm = registry.create(self.controller)
        algorithm.prepare(self._manifest, self._config)
        return BackendSession(algorithm=algorithm)
