"""The QoE model of Section 3.2 (Eq. 5).

QoE of chunks 1..K is a weighted sum of four elements:

.. math::

    QoE = \\sum_k q(R_k)
          - \\lambda \\sum_k |q(R_{k+1}) - q(R_k)|
          - \\mu \\sum_k (d_k(R_k)/C_k - B_k)_+
          - \\mu_s T_s

with non-negative weights: ``lambda`` for quality variation, ``mu`` for
rebuffering time, ``mu_s`` for startup delay.  The paper's default is the
"Balanced" preset (lambda=1, mu=mu_s=3000 with identity ``q``): one second
of rebuffering or startup costs as much as lowering one chunk by 3000 kbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .video.quality import IdentityQuality, QualityFunction

__all__ = ["QoEWeights", "QoEBreakdown", "compute_qoe"]


@dataclass(frozen=True)
class QoEWeights:
    """The (lambda, mu, mu_s) weight vector of Eq. 5."""

    switching: float = 1.0  # lambda — quality-variation penalty
    rebuffering: float = 3000.0  # mu — per second of stall
    startup: float = 3000.0  # mu_s — per second of startup delay
    label: str = "balanced"

    def __post_init__(self) -> None:
        if self.switching < 0 or self.rebuffering < 0 or self.startup < 0:
            raise ValueError("QoE weights must be non-negative")

    # The three preference profiles evaluated in Figure 11b.

    @staticmethod
    def balanced() -> "QoEWeights":
        """lambda=1, mu=mu_s=3000 — the paper's default."""
        return QoEWeights(1.0, 3000.0, 3000.0, label="balanced")

    @staticmethod
    def avoid_instability() -> "QoEWeights":
        """lambda=3, mu=mu_s=3000 — smoothness-sensitive users."""
        return QoEWeights(3.0, 3000.0, 3000.0, label="avoid-instability")

    @staticmethod
    def avoid_rebuffering() -> "QoEWeights":
        """lambda=1, mu=mu_s=6000 — stall-sensitive users."""
        return QoEWeights(1.0, 6000.0, 6000.0, label="avoid-rebuffering")

    @staticmethod
    def preset(name: str) -> "QoEWeights":
        presets = {
            "balanced": QoEWeights.balanced,
            "avoid-instability": QoEWeights.avoid_instability,
            "avoid-rebuffering": QoEWeights.avoid_rebuffering,
        }
        try:
            return presets[name]()
        except KeyError:
            raise ValueError(
                f"unknown preset {name!r}; expected one of {sorted(presets)}"
            ) from None


@dataclass(frozen=True)
class QoEBreakdown:
    """Eq. 5 evaluated term by term."""

    quality_total: float
    switching_total: float  # sum of |q(R_{k+1}) - q(R_k)|, unweighted
    rebuffer_seconds: float
    startup_seconds: float
    weights: QoEWeights

    @property
    def total(self) -> float:
        w = self.weights
        return (
            self.quality_total
            - w.switching * self.switching_total
            - w.rebuffering * self.rebuffer_seconds
            - w.startup * self.startup_seconds
        )

    def reweighted(self, weights: QoEWeights) -> "QoEBreakdown":
        """The same session scored under different user preferences."""
        return QoEBreakdown(
            self.quality_total,
            self.switching_total,
            self.rebuffer_seconds,
            self.startup_seconds,
            weights,
        )

    def without_startup(self) -> "QoEBreakdown":
        """QoE excluding the startup term (the Figure 11d convention)."""
        return QoEBreakdown(
            self.quality_total,
            self.switching_total,
            self.rebuffer_seconds,
            0.0,
            self.weights,
        )


def compute_qoe(
    bitrates_kbps: Sequence[float],
    rebuffer_seconds: float,
    startup_seconds: float = 0.0,
    weights: Optional[QoEWeights] = None,
    quality: Optional[QualityFunction] = None,
) -> QoEBreakdown:
    """Evaluate Eq. 5 for a completed (or partial) session.

    Parameters
    ----------
    bitrates_kbps:
        Chosen per-chunk bitrates ``R_1..R_K`` in playback order.
    rebuffer_seconds:
        Total stall time ``sum_k (d_k/C_k - B_k)_+``.
    startup_seconds:
        Startup delay ``T_s``.
    """
    if not bitrates_kbps:
        raise ValueError("need at least one chunk")
    if rebuffer_seconds < 0 or startup_seconds < 0:
        raise ValueError("rebuffer and startup times must be >= 0")
    weights = weights if weights is not None else QoEWeights.balanced()
    q = quality if quality is not None else IdentityQuality()
    values = [q(r) for r in bitrates_kbps]
    quality_total = sum(values)
    switching_total = sum(abs(b - a) for a, b in zip(values, values[1:]))
    return QoEBreakdown(
        quality_total=quality_total,
        switching_total=switching_total,
        rebuffer_seconds=rebuffer_seconds,
        startup_seconds=startup_seconds,
        weights=weights,
    )
