"""``repro.faults`` — deterministic, seedable fault injection.

The stack's happy path is exercised everywhere; this package
manufactures the unhappy ones, end to end:

* :mod:`spec` — the fault vocabulary: :class:`Blackout`,
  :class:`ThroughputClamp`, :class:`LatencySpike`, :class:`ChunkFailure`
  as plain frozen dataclasses.
* :mod:`trace` — :func:`apply_trace_faults` compiles bandwidth faults
  into an ordinary :class:`~repro.traces.trace.Trace` by exact segment
  surgery (byte integration outside fault windows is untouched).
* :mod:`link` — :class:`FaultyLink` enforces per-transfer faults around
  the emulation's shared bottleneck link.
* :mod:`simlink` — :class:`SimLinkFaults`, the same per-transfer
  semantics for the synchronous chunk simulator (dead time counted into
  each chunk's ``stalled_s``).
* :mod:`chaos` — :class:`ChaosPolicy`, the decision server's injected
  misbehaviour source (5xx, slow-loris, resets, mid-flight table swaps).
* :mod:`profiles` — named scenarios for ``repro-abr chaos`` and tests.

Everything is seeded and replayable: the same faults + seed + workload
produce the same failure sequence, which is what makes chaos runs
assertable in CI.  See ``docs/robustness.md`` for the full fault model
and the matching recovery semantics.
"""

from .spec import (
    BLACKOUT_FLOOR_KBPS,
    Blackout,
    ChunkFailure,
    FaultSpec,
    LatencySpike,
    ThroughputClamp,
    WindowedFault,
    bandwidth_faults,
    link_faults,
)
from .trace import apply_trace_faults
from .link import FailedTransfer, FaultyLink
from .simlink import SimLinkFaults
from .chaos import (
    CHAOS_ERROR,
    CHAOS_KILL,
    CHAOS_NONE,
    CHAOS_RESET,
    CHAOS_SLOW,
    CHAOS_TABLE_SWAP,
    ChaosConfig,
    ChaosPolicy,
)
from .profiles import PROFILES, FaultProfile, get_profile, periodic_blackouts

__all__ = [
    "BLACKOUT_FLOOR_KBPS",
    "Blackout",
    "ChunkFailure",
    "FaultSpec",
    "LatencySpike",
    "ThroughputClamp",
    "WindowedFault",
    "bandwidth_faults",
    "link_faults",
    "apply_trace_faults",
    "FailedTransfer",
    "FaultyLink",
    "SimLinkFaults",
    "CHAOS_ERROR",
    "CHAOS_KILL",
    "CHAOS_NONE",
    "CHAOS_RESET",
    "CHAOS_SLOW",
    "CHAOS_TABLE_SWAP",
    "ChaosConfig",
    "ChaosPolicy",
    "PROFILES",
    "FaultProfile",
    "get_profile",
    "periodic_blackouts",
]
