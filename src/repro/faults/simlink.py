"""Per-transfer link-fault enforcement for the chunk-level simulator.

:class:`~repro.faults.link.FaultyLink` enforces :class:`LatencySpike`
and :class:`ChunkFailure` around the event-driven emulation link; the
simulator's synchronous download loop needs the same semantics without
the event queue.  :class:`SimLinkFaults` mirrors ``FaultyLink`` exactly:

* each transfer start makes one seeded Bernoulli draw per at-risk
  :class:`ChunkFailure` spec, in start order — a failure costs
  ``detect_delay_s`` of dead wall time and the transfer retries from the
  delayed instant (a fresh draw at the new start time);
* once a start survives the failure draws, every :class:`LatencySpike`
  window active at that instant delays the first byte by its
  ``extra_delay_s`` (overlapping spikes stack).

The whole overhead is *dead* time: it extends the download's wall clock
without delivering bytes, so the session loop counts it both into the
download time and into the chunk's ``stalled_s`` — which is precisely
the on/off signal the gap-corrected predictors divide back out.

The same (faults, seed) pair always reproduces the same overhead
sequence, keeping sensitivity-experiment results bit-reproducible across
worker counts.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from .spec import ChunkFailure, FaultSpec, LatencySpike, link_faults

__all__ = ["SimLinkFaults"]

#: Retry ceiling per transfer: with the profile rates used in this repo
#: (<= 0.25) the probability of hitting it is below 1e-38; it exists so a
#: pathological rate=1.0 spec terminates instead of looping forever.
_MAX_ATTEMPTS = 64


class SimLinkFaults:
    """Deterministic link-fault overhead for synchronous simulations."""

    def __init__(self, faults: Iterable[FaultSpec], seed: int = 0) -> None:
        specs = link_faults(faults)
        self._failures: List[ChunkFailure] = [
            s for s in specs if isinstance(s, ChunkFailure)
        ]
        self._spikes: List[LatencySpike] = [
            s for s in specs if isinstance(s, LatencySpike)
        ]
        self._rng = random.Random(seed)
        self.transfers_started = 0
        self.transfers_failed = 0

    def __bool__(self) -> bool:
        return bool(self._failures or self._spikes)

    def overhead_s(self, start_s: float) -> float:
        """Dead seconds injected ahead of a transfer starting at ``start_s``.

        Consumes RNG draws exactly as :class:`FaultyLink` would for a
        client that retries every failure immediately.
        """
        now = start_s
        for _ in range(_MAX_ATTEMPTS):
            self.transfers_started += 1
            spec = self._draw_failure(now)
            if spec is None:
                break
            self.transfers_failed += 1
            now += spec.detect_delay_s
        for spike in self._spikes:
            if spike.active_at(now):
                now += spike.extra_delay_s
        return now - start_s

    def _draw_failure(self, now: float):
        """One Bernoulli draw per at-risk transfer, in start order."""
        for spec in self._failures:
            if spec.rate <= 0 or not spec.active_at(now):
                continue
            if self._rng.random() < spec.rate:
                return spec
        return None
