"""Fault specifications — the vocabulary of manufactured misbehaviour.

RobustMPC exists because throughput predictions go wrong (Section 4.3),
and the paper's FCC/HSDPA evaluation traces matter precisely because
they contain stalls and outages.  A :class:`FaultSpec` describes one
such event deterministically: *when* it happens (a wall-clock window on
the session timeline) and *what* it does.  Specs are plain frozen
dataclasses, so a fault scenario is data — it can be listed in a test,
named in a profile, or serialised into a report.

Two families exist, distinguished by where they apply:

* **bandwidth faults** (:class:`Blackout`, :class:`ThroughputClamp`) act
  on the capacity function itself and are compiled into an ordinary
  :class:`~repro.traces.trace.Trace` by
  :func:`repro.faults.trace.apply_trace_faults` — exact piecewise
  segment surgery, never numeric approximation;
* **link faults** (:class:`LatencySpike`, :class:`ChunkFailure`) act on
  individual transfers and are enforced by
  :class:`~repro.faults.link.FaultyLink` around a
  :class:`~repro.emulation.link.SharedTraceLink`.

Randomised faults (:class:`ChunkFailure`) carry a *rate*, not an
outcome: the seeded RNG lives in the injector, so the same spec + seed
always reproduces the same failure sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "FaultSpec",
    "WindowedFault",
    "Blackout",
    "ThroughputClamp",
    "LatencySpike",
    "ChunkFailure",
    "BLACKOUT_FLOOR_KBPS",
    "bandwidth_faults",
    "link_faults",
]

#: Capacity during a :class:`Blackout` window.  Exactly zero: the trace
#: model allows zero-bandwidth segments, and the exact integrator simply
#: delivers no bytes until the window ends.
BLACKOUT_FLOOR_KBPS = 0.0


@dataclass(frozen=True)
class FaultSpec:
    """Marker base class: every fault is one of these."""


@dataclass(frozen=True)
class WindowedFault(FaultSpec):
    """A fault active on the half-open wall-clock window
    ``[start_s, start_s + duration_s)``.

    Windows are expressed on the session timeline, which for traces is
    the trace's own ``[0, duration)`` — a fault window past the trace
    end is clipped away, and (like the trace itself) what remains
    repeats if the session wraps the trace.
    """

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or math.isnan(self.start_s):
            raise ValueError("fault start must be >= 0")
        if self.duration_s <= 0 or math.isinf(self.duration_s):
            raise ValueError("fault duration must be positive and finite")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


@dataclass(frozen=True)
class Blackout(WindowedFault):
    """Total connectivity loss: capacity pinned to
    :data:`BLACKOUT_FLOOR_KBPS` for the window (a tunnel, a handover
    gap — the HSDPA traces are full of these)."""


@dataclass(frozen=True)
class ThroughputClamp(WindowedFault):
    """Capacity capped at ``cap_kbps`` for the window — the
    contention-induced throughput collapse the multiplayer fairness
    work calls the common case, not the corner case."""

    cap_kbps: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cap_kbps < 0 or math.isnan(self.cap_kbps) or math.isinf(self.cap_kbps):
            raise ValueError("clamp cap must be finite and >= 0")


@dataclass(frozen=True)
class LatencySpike(WindowedFault):
    """Every transfer *starting* inside the window is delayed by
    ``extra_delay_s`` before its first byte flows (bufferbloat, a
    loaded CDN edge).  Overlapping spikes stack."""

    extra_delay_s: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_delay_s <= 0 or math.isinf(self.extra_delay_s):
            raise ValueError("extra delay must be positive and finite")


@dataclass(frozen=True)
class ChunkFailure(FaultSpec):
    """Each transfer fails independently with probability ``rate``.

    A failed transfer delivers nothing; the failure surfaces after
    ``detect_delay_s`` of wasted wall time (a connection timeout, a
    truncated response).  When ``start_s``/``duration_s`` bound a
    window, only transfers starting inside it are at risk; the default
    window is the whole session.  The Bernoulli draw itself is made by
    the injector's seeded RNG, so outcomes are reproducible.
    """

    rate: float = 0.1
    detect_delay_s: float = 0.25
    start_s: float = 0.0
    duration_s: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("failure rate must be in [0, 1]")
        if self.detect_delay_s < 0:
            raise ValueError("detect delay must be >= 0")
        if self.start_s < 0:
            raise ValueError("fault start must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("fault duration must be positive")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active_at(self, t: float) -> bool:
        return self.start_s <= t < self.end_s


def bandwidth_faults(faults) -> list:
    """The subset of ``faults`` that modify the capacity function."""
    return [f for f in faults if isinstance(f, (Blackout, ThroughputClamp))]


def link_faults(faults) -> list:
    """The subset of ``faults`` enforced per-transfer by the link."""
    return [f for f in faults if isinstance(f, (LatencySpike, ChunkFailure))]
