"""Compiling bandwidth faults into exact piecewise-constant traces.

A :class:`~repro.traces.trace.Trace` is a piecewise-constant function,
and every bandwidth fault (blackout, clamp) is itself piecewise-constant
in time — so the faulted capacity function is again an ordinary trace.
:func:`apply_trace_faults` performs that composition exactly: it splits
segments at fault-window edges and transforms each resulting segment's
value, so the simulator's and emulator's exact byte integration applies
unchanged.  Outside fault windows, segment boundaries and values are
bit-identical to the clean trace; with no bandwidth faults at all, the
clean trace object is returned untouched.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..traces.trace import Trace
from .spec import BLACKOUT_FLOOR_KBPS, Blackout, FaultSpec, ThroughputClamp, bandwidth_faults

__all__ = ["apply_trace_faults"]

_EPS = 1e-12


def _faulted_bandwidth(bw_kbps: float, t: float, specs: List[FaultSpec]) -> float:
    """Capacity at time ``t`` after every active bandwidth fault."""
    for spec in specs:
        if not spec.active_at(t):
            continue
        if isinstance(spec, Blackout):
            bw_kbps = BLACKOUT_FLOOR_KBPS
        elif isinstance(spec, ThroughputClamp):
            bw_kbps = min(bw_kbps, spec.cap_kbps)
    return bw_kbps


def apply_trace_faults(
    trace: Trace,
    faults: Iterable[FaultSpec],
    name: Optional[str] = None,
) -> Trace:
    """The trace with every bandwidth fault applied, exactly.

    Fault windows live on the trace's own ``[0, duration)`` timeline;
    the parts of a window past the trace end are clipped (and therefore
    repeat with the trace if a session wraps it).  Link-level faults in
    ``faults`` are ignored here — they are enforced by
    :class:`~repro.faults.link.FaultyLink`.

    With no bandwidth faults the input trace is returned as-is, which
    makes "empty fault list == clean run" hold by construction.
    """
    specs = bandwidth_faults(faults)
    duration = trace.duration_s
    specs = [s for s in specs if s.start_s < duration - _EPS]
    if not specs:
        return trace

    # Every instant where the faulted capacity can change value: the
    # trace's own segment starts plus each fault window's two edges.
    boundaries = set(trace.timestamps)
    for spec in specs:
        boundaries.add(spec.start_s)
        if spec.end_s < duration - _EPS:
            boundaries.add(spec.end_s)
    times = sorted(b for b in boundaries if b < duration - _EPS)

    bws = [
        _faulted_bandwidth(trace.bandwidth_at(t), t, specs) for t in times
    ]
    label = name if name is not None else (
        f"{trace.name}+faults" if trace.name else "faulted"
    )
    return Trace(times, bws, duration_s=duration, name=label)
