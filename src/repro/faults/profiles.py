"""Named fault profiles — reusable chaos scenarios for CLI and tests.

A :class:`FaultProfile` bundles the three injection points into one
named, seedable scenario: bandwidth/link faults for the traces players
replay, and a :class:`~repro.faults.chaos.ChaosConfig` for the decision
server.  ``repro-abr chaos --profile NAME`` runs the load generator
under one of these and compares against the clean run.

Profiles are deliberately modest in size — they describe *shapes* of
misbehaviour (periodic blackouts, 20% resets, a slow-loris server), not
calibrated reproductions of any particular outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .chaos import ChaosConfig
from .spec import Blackout, ChunkFailure, FaultSpec, LatencySpike, ThroughputClamp

__all__ = ["FaultProfile", "PROFILES", "get_profile", "periodic_blackouts"]


def periodic_blackouts(
    period_s: float,
    blackout_s: float,
    total_s: float,
    first_start_s: float = 30.0,
) -> List[Blackout]:
    """One ``blackout_s`` outage every ``period_s`` over ``total_s``."""
    if period_s <= blackout_s:
        raise ValueError("period must exceed the blackout length")
    out: List[Blackout] = []
    start = first_start_s
    while start + blackout_s < total_s:
        out.append(Blackout(start, blackout_s))
        start += period_s
    return out


@dataclass(frozen=True)
class FaultProfile:
    """One named end-to-end fault scenario."""

    name: str
    description: str
    trace_faults: Tuple[FaultSpec, ...] = ()
    chaos: ChaosConfig = field(default_factory=ChaosConfig)

    def with_seed(self, seed: int) -> "FaultProfile":
        """The same profile with its chaos RNG re-seeded."""
        return FaultProfile(
            name=self.name,
            description=self.description,
            trace_faults=self.trace_faults,
            chaos=ChaosConfig(
                reset_rate=self.chaos.reset_rate,
                error_rate=self.chaos.error_rate,
                slow_rate=self.chaos.slow_rate,
                slow_delay_s=self.chaos.slow_delay_s,
                table_swap_rate=self.chaos.table_swap_rate,
                seed=seed,
            ),
        )


PROFILES: Dict[str, FaultProfile] = {
    p.name: p
    for p in (
        FaultProfile(
            name="clean",
            description="no faults at all — the baseline the others are judged against",
        ),
        FaultProfile(
            name="blackouts",
            description="5 s connectivity loss every 60 s plus one deep 30 s throughput clamp",
            trace_faults=tuple(periodic_blackouts(60.0, 5.0, 320.0))
            + (ThroughputClamp(150.0, 30.0, cap_kbps=50.0),),
        ),
        FaultProfile(
            name="lossy-link",
            description="10% of chunk downloads fail; occasional latency spikes",
            trace_faults=(
                ChunkFailure(rate=0.10, detect_delay_s=0.25),
                LatencySpike(90.0, 20.0, extra_delay_s=0.4),
                LatencySpike(240.0, 20.0, extra_delay_s=0.4),
            ),
        ),
        FaultProfile(
            name="resets",
            description="the server resets 20% of decision connections mid-request",
            chaos=ChaosConfig(reset_rate=0.20),
        ),
        FaultProfile(
            name="flaky-server",
            description="10% HTTP 500s, 5% slow-loris responses, occasional mid-flight table swaps",
            chaos=ChaosConfig(
                error_rate=0.10,
                slow_rate=0.05,
                slow_delay_s=0.3,
                table_swap_rate=0.02,
            ),
        ),
        FaultProfile(
            name="meltdown",
            description="blackouts on the link and resets + 500s + slow-loris on the server",
            trace_faults=tuple(periodic_blackouts(80.0, 5.0, 320.0))
            + (ChunkFailure(rate=0.05, detect_delay_s=0.25),),
            chaos=ChaosConfig(
                reset_rate=0.10,
                error_rate=0.10,
                slow_rate=0.05,
                slow_delay_s=0.3,
                table_swap_rate=0.02,
            ),
        ),
    )
}


def get_profile(name: str) -> FaultProfile:
    """Look up a named profile; raises with the catalogue on a miss."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; available: "
            + ", ".join(sorted(PROFILES))
        ) from None
