"""Per-transfer fault enforcement around the emulation link.

:class:`FaultyLink` wraps a :class:`~repro.emulation.link.SharedTraceLink`
and applies the link-level fault specs — latency spikes delay a
transfer's first byte, chunk failures abort a transfer outright — while
delegating all byte accounting to the wrapped link, so the exact
integration and fair-sharing semantics are untouched.  Randomised
outcomes come from one seeded :class:`random.Random`, consumed once per
at-risk transfer in start order: the same (faults, seed, workload)
triple always reproduces the same failure sequence.

A failure is reported through the ``on_fail`` callback with a
:class:`FailedTransfer` record.  Callers that pass no ``on_fail`` (a
client that predates the hardening) are never broken: the failure
degrades to a latency spike of ``detect_delay_s`` followed by a normal
delivery, because losing a chunk with nobody to retry it would deadlock
the session.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from ..emulation.link import SharedTraceLink, Transfer
from .spec import ChunkFailure, FaultSpec, LatencySpike, link_faults

__all__ = ["FailedTransfer", "FaultyLink"]


@dataclass(frozen=True)
class FailedTransfer:
    """What the client learns about a transfer that did not complete."""

    size_kilobits: float
    started_at_s: float
    failed_at_s: float

    @property
    def wasted_s(self) -> float:
        return self.failed_at_s - self.started_at_s


class FaultyLink:
    """A :class:`SharedTraceLink` with link-level faults injected.

    Exposes the same surface the emulated client uses (``trace``,
    ``queue``, ``active_transfers``, ``start_transfer``), so it drops in
    wherever the clean link does.  Bandwidth faults belong in the
    wrapped link's trace (see
    :func:`~repro.faults.trace.apply_trace_faults`); this wrapper only
    handles the per-transfer kinds.
    """

    def __init__(
        self,
        inner: SharedTraceLink,
        faults: Iterable[FaultSpec],
        seed: int = 0,
    ) -> None:
        self.inner = inner
        specs = link_faults(faults)
        self._failures: List[ChunkFailure] = [
            s for s in specs if isinstance(s, ChunkFailure)
        ]
        self._spikes: List[LatencySpike] = [
            s for s in specs if isinstance(s, LatencySpike)
        ]
        self._rng = random.Random(seed)
        self.transfers_started = 0
        self.transfers_failed = 0

    # ------------------------------------------------------------------
    # SharedTraceLink surface
    # ------------------------------------------------------------------

    @property
    def trace(self):
        return self.inner.trace

    @property
    def queue(self):
        return self.inner.queue

    @property
    def active_transfers(self) -> int:
        return self.inner.active_transfers

    @property
    def cross_flows(self) -> int:
        return self.inner.cross_flows

    def add_cross_flow(self, rate_kbps: float, label: str = "cross"):
        """Cross traffic is not subject to chunk faults — pass through."""
        return self.inner.add_cross_flow(rate_kbps, label)

    def remove_cross_flow(self, flow) -> float:
        return self.inner.remove_cross_flow(flow)

    def start_transfer(
        self,
        size_kilobits: float,
        on_complete: Callable[[Transfer], None],
        on_fail: Optional[Callable[[FailedTransfer], None]] = None,
    ) -> Optional[Transfer]:
        """Begin a transfer, subject to the injected faults.

        Returns the underlying :class:`Transfer` when the transfer
        starts immediately and cleanly; ``None`` when it was delayed or
        failed (the outcome arrives through the callbacks either way).
        """
        now = self.queue.now
        self.transfers_started += 1

        failure = self._draw_failure(now)
        if failure is not None:
            self.transfers_failed += 1
            delay = failure.detect_delay_s
            if on_fail is not None:
                started = now
                record = FailedTransfer(
                    size_kilobits, started, started + delay
                )
                self.queue.schedule_in(delay, lambda: on_fail(record))
                return None
            # No failure handler: degrade to a delay so the session
            # cannot deadlock on a lost chunk.
            self.queue.schedule_in(
                delay,
                lambda: self.inner.start_transfer(size_kilobits, on_complete),
            )
            return None

        extra = sum(
            s.extra_delay_s for s in self._spikes if s.active_at(now)
        )
        if extra > 0:
            self.queue.schedule_in(
                extra,
                lambda: self.inner.start_transfer(size_kilobits, on_complete),
            )
            return None
        return self.inner.start_transfer(size_kilobits, on_complete)

    # ------------------------------------------------------------------

    def _draw_failure(self, now: float) -> Optional[ChunkFailure]:
        """One Bernoulli draw per at-risk transfer, in start order."""
        for spec in self._failures:
            if spec.rate <= 0 or not spec.active_at(now):
                continue
            if self._rng.random() < spec.rate:
                return spec
        return None
