"""Chaos mode for the decision service — injected, never monkeypatched.

:class:`ChaosPolicy` is handed to
:class:`~repro.service.server.DecisionServer` at construction; the
server consults it once per ``/v1/decide`` request and applies whichever
mischief it returns:

* ``reset`` — the connection is aborted before any response bytes
  (a peer reset mid-request, the failure the client's retry path and
  the load generator's local fallback must survive);
* ``error-500`` — a well-formed HTTP 500 (the classic overloaded or
  crashing backend);
* ``slow`` — the response is withheld for ``slow_delay_s`` before being
  sent, a slow-loris server that trips client deadlines;
* ``table-swap`` — the service's table is swapped mid-flight (unloaded
  if loaded, restored otherwise), exercising the warm/cold swap path
  under live traffic.

* ``worker-kill`` — the serving process dies abruptly mid-request (the
  connection is aborted, then the server's kill hook fires — in a
  cluster worker that hook is ``os._exit``, a crash the supervisor must
  detect and repair; a standalone server with no hook installed only
  aborts the connection, so the action degrades to a ``reset``).

Outcomes come from one seeded RNG drawn once per request in arrival
order, so a single-connection workload replays identically for a fixed
seed — the determinism the chaos integration test asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "ChaosConfig",
    "ChaosPolicy",
    "CHAOS_NONE",
    "CHAOS_RESET",
    "CHAOS_ERROR",
    "CHAOS_SLOW",
    "CHAOS_TABLE_SWAP",
    "CHAOS_KILL",
]

#: Action names, as counted in the server's ``/metrics`` document.
CHAOS_NONE = "none"
CHAOS_RESET = "reset"
CHAOS_ERROR = "error-500"
CHAOS_SLOW = "slow"
CHAOS_TABLE_SWAP = "table-swap"
CHAOS_KILL = "worker-kill"


@dataclass(frozen=True)
class ChaosConfig:
    """Per-request misbehaviour probabilities (independent; at most one
    action fires per request, tested in the order reset, error, slow,
    table-swap, worker-kill over a single uniform draw — kill last, so
    adding ``kill_rate`` to an existing profile never perturbs the other
    actions' draw sequence for a fixed seed)."""

    reset_rate: float = 0.0
    error_rate: float = 0.0
    slow_rate: float = 0.0
    slow_delay_s: float = 0.5
    table_swap_rate: float = 0.0
    kill_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        rates = (
            self.reset_rate,
            self.error_rate,
            self.slow_rate,
            self.table_swap_rate,
            self.kill_rate,
        )
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError("chaos rates must be in [0, 1]")
        if sum(rates) > 1.0 + 1e-9:
            raise ValueError("chaos rates must sum to at most 1")
        if self.slow_delay_s < 0:
            raise ValueError("slow delay must be >= 0")

    @property
    def any_enabled(self) -> bool:
        return (
            self.reset_rate > 0
            or self.error_rate > 0
            or self.slow_rate > 0
            or self.table_swap_rate > 0
            or self.kill_rate > 0
        )


class ChaosPolicy:
    """Seeded per-request action source for the server's chaos mode."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.actions_drawn = 0

    def next_action(self) -> str:
        """The action for the next decide request (one RNG draw)."""
        self.actions_drawn += 1
        r = self._rng.random()
        config = self.config
        edge = config.reset_rate
        if r < edge:
            return CHAOS_RESET
        edge += config.error_rate
        if r < edge:
            return CHAOS_ERROR
        edge += config.slow_rate
        if r < edge:
            return CHAOS_SLOW
        edge += config.table_swap_rate
        if r < edge:
            return CHAOS_TABLE_SWAP
        edge += config.kill_rate
        if r < edge:
            return CHAOS_KILL
        return CHAOS_NONE
