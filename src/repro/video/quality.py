"""Perceived-quality functions ``q(.)``.

Section 3.1: ``q : R -> R+`` is a non-decreasing map from selected bitrate
to perceived quality.  The paper's evaluation assumes the identity function
(Section 7.1.1) but motivates device- and content-dependent alternatives
("on a mobile device 3 Mbps and 1 Mbps may look similar").  Each class here
is one such ``q``; all are callable on a bitrate in kbps.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = [
    "QualityFunction",
    "IdentityQuality",
    "LogQuality",
    "SaturatingQuality",
    "PiecewiseLinearQuality",
]


class QualityFunction:
    """Base class; subclasses implement :meth:`value`."""

    name = "base"

    def value(self, bitrate_kbps: float) -> float:
        raise NotImplementedError

    def __call__(self, bitrate_kbps: float) -> float:
        if bitrate_kbps < 0:
            raise ValueError("bitrate must be >= 0")
        return self.value(bitrate_kbps)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class IdentityQuality(QualityFunction):
    """``q(R) = R`` — the paper's default (Section 7.1.1).

    With this choice the QoE weights are interpreted in kbps units: the
    default ``mu = 3000`` means one second of rebuffering costs as much as
    lowering one chunk by 3000 kbps.
    """

    name = "identity"

    def value(self, bitrate_kbps: float) -> float:
        return bitrate_kbps


class LogQuality(QualityFunction):
    """``q(R) = scale * log(R / R0)`` — diminishing returns at high rates.

    This is the quality model adopted by the paper's follow-on work
    (Pensieve's ``QoE_log``); ``R0`` is the bitrate at which quality is 0.
    """

    name = "log"

    def __init__(self, reference_kbps: float = 300.0, scale: float = 1000.0) -> None:
        if reference_kbps <= 0:
            raise ValueError("reference bitrate must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.reference_kbps = reference_kbps
        self.scale = scale

    def value(self, bitrate_kbps: float) -> float:
        if bitrate_kbps == 0:
            return -math.inf
        return self.scale * math.log(bitrate_kbps / self.reference_kbps)


class SaturatingQuality(QualityFunction):
    """``q(R) = cap * (1 - exp(-R / knee))`` — a small-screen device model.

    Implements the paper's mobile example: quality saturates, so 1 Mbps and
    3 Mbps are nearly indistinguishable when ``knee`` is small.
    """

    name = "saturating"

    def __init__(self, knee_kbps: float = 800.0, cap: float = 3000.0) -> None:
        if knee_kbps <= 0 or cap <= 0:
            raise ValueError("knee and cap must be positive")
        self.knee_kbps = knee_kbps
        self.cap = cap

    def value(self, bitrate_kbps: float) -> float:
        return self.cap * (1.0 - math.exp(-bitrate_kbps / self.knee_kbps))


class PiecewiseLinearQuality(QualityFunction):
    """Interpolated quality from explicit ``(bitrate, quality)`` anchors.

    Useful for content-dependent curves (the paper's "dynamic" vs "static"
    chunk observation) measured offline, e.g. from SSIM/VMAF tables.
    """

    name = "piecewise"

    def __init__(self, anchors: list) -> None:
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        pts = sorted((float(r), float(q)) for r, q in anchors)
        rates = [r for r, _ in pts]
        quals = [q for _, q in pts]
        if len(set(rates)) != len(rates):
            raise ValueError("anchor bitrates must be distinct")
        if quals != sorted(quals):
            raise ValueError("quality must be non-decreasing in bitrate")
        self._rates = rates
        self._quals = quals

    def value(self, bitrate_kbps: float) -> float:
        rates, quals = self._rates, self._quals
        if bitrate_kbps <= rates[0]:
            return quals[0]
        if bitrate_kbps >= rates[-1]:
            return quals[-1]
        for i in range(1, len(rates)):
            if bitrate_kbps <= rates[i]:
                frac = (bitrate_kbps - rates[i - 1]) / (rates[i] - rates[i - 1])
                return quals[i - 1] + frac * (quals[i] - quals[i - 1])
        return quals[-1]  # pragma: no cover - unreachable


def as_quality_function(q: "QualityFunction | Callable[[float], float] | None") -> QualityFunction:
    """Coerce plain callables (or None) to a :class:`QualityFunction`."""
    if q is None:
        return IdentityQuality()
    if isinstance(q, QualityFunction):
        return q

    class _Wrapped(QualityFunction):
        name = "wrapped"

        def value(self, bitrate_kbps: float) -> float:
            return q(bitrate_kbps)

    return _Wrapped()
