"""Video model substrate: manifests, quality functions, presets."""

from .manifest import BitrateLadder, VideoManifest
from .quality import (
    IdentityQuality,
    LogQuality,
    PiecewiseLinearQuality,
    QualityFunction,
    SaturatingQuality,
)
from .vbr import complexity_profile, vbr_manifest
from .presets import (
    DEFAULT_BUFFER_CAPACITY_S,
    ENVIVIO_CHUNK_SECONDS,
    ENVIVIO_LADDER_KBPS,
    ENVIVIO_NUM_CHUNKS,
    envivio,
    envivio_vbr,
    short_test_video,
)

__all__ = [
    "BitrateLadder",
    "VideoManifest",
    "QualityFunction",
    "IdentityQuality",
    "LogQuality",
    "SaturatingQuality",
    "PiecewiseLinearQuality",
    "complexity_profile",
    "vbr_manifest",
    "DEFAULT_BUFFER_CAPACITY_S",
    "ENVIVIO_CHUNK_SECONDS",
    "ENVIVIO_LADDER_KBPS",
    "ENVIVIO_NUM_CHUNKS",
    "envivio",
    "envivio_vbr",
    "short_test_video",
]
