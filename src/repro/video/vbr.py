"""Variable-bitrate (VBR) chunk-size generation.

Section 3.1 notes that under VBR the ``d_k ~ R_k`` relationship differs
across chunks (complex scenes need more bits at the same nominal level).
The evaluation uses a CBR encode, but the control problem — and our
MPC solver — handles per-chunk sizes, so this module provides seeded VBR
manifests for tests and extension experiments.

The model multiplies each chunk's nominal size by a per-chunk *complexity*
factor drawn from a mean-one lognormal AR(1) process (scene complexity is
temporally correlated), shared across levels of the same chunk (a hard
scene is hard at every bitrate).
"""

from __future__ import annotations

import math
import random
from typing import List

from .manifest import BitrateLadder, VideoManifest

__all__ = ["vbr_manifest", "complexity_profile"]


def complexity_profile(
    num_chunks: int,
    variability: float = 0.25,
    correlation: float = 0.6,
    seed: int = 0,
) -> List[float]:
    """Mean-one multiplicative complexity factors for each chunk.

    ``variability`` is the marginal sigma of ``log(factor)``;
    ``correlation`` the AR(1) coefficient of the log-process.
    """
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    if variability < 0:
        raise ValueError("variability must be >= 0")
    if not (0 <= correlation < 1):
        raise ValueError("correlation must be in [0, 1)")
    rng = random.Random(f"{seed}-vbr")
    innovation = variability * math.sqrt(1 - correlation**2)
    log_factor = rng.gauss(0.0, variability)
    out = []
    for _ in range(num_chunks):
        # exp(-sigma^2/2) correction keeps the factor mean at one.
        out.append(math.exp(log_factor - 0.5 * variability**2))
        log_factor = correlation * log_factor + rng.gauss(0.0, innovation)
    return out


def vbr_manifest(
    chunk_duration_s: float,
    ladder: BitrateLadder,
    num_chunks: int,
    variability: float = 0.25,
    correlation: float = 0.6,
    seed: int = 0,
    title: str = "",
) -> VideoManifest:
    """A VBR :class:`VideoManifest` around nominal ``L * R`` sizes."""
    factors = complexity_profile(num_chunks, variability, correlation, seed)
    sizes = [
        [chunk_duration_s * rate * factor for rate in ladder]
        for factor in factors
    ]
    return VideoManifest(chunk_duration_s, ladder, sizes, title=title or "vbr")
