"""Video presets used in the paper's evaluation.

Section 7.1.1: *"We use the 'Envivio' video from the DASH-264 JavaScript
reference client test page which is 260s long, consisting of 65 4s chunks.
The video is encoded ... in the following bitrate levels:
R = {350, 600, 1000, 2000, 3000} kbps"* (matching YouTube's 240p–1080p
recommendations), with buffer size ``Bmax = 30 s``.
"""

from __future__ import annotations

from .manifest import BitrateLadder, VideoManifest
from .vbr import vbr_manifest

__all__ = [
    "ENVIVIO_LADDER_KBPS",
    "ENVIVIO_CHUNK_SECONDS",
    "ENVIVIO_NUM_CHUNKS",
    "DEFAULT_BUFFER_CAPACITY_S",
    "envivio",
    "envivio_vbr",
    "short_test_video",
]

ENVIVIO_LADDER_KBPS = (350.0, 600.0, 1000.0, 2000.0, 3000.0)
ENVIVIO_CHUNK_SECONDS = 4.0
ENVIVIO_NUM_CHUNKS = 65
DEFAULT_BUFFER_CAPACITY_S = 30.0


def envivio() -> VideoManifest:
    """The paper's evaluation video: 65 x 4 s CBR chunks, 5-level ladder."""
    return VideoManifest.cbr(
        ENVIVIO_CHUNK_SECONDS,
        BitrateLadder(ENVIVIO_LADDER_KBPS),
        ENVIVIO_NUM_CHUNKS,
        title="envivio",
    )


def envivio_vbr(variability: float = 0.25, seed: int = 0) -> VideoManifest:
    """A VBR variant of the Envivio preset (extension experiments)."""
    return vbr_manifest(
        ENVIVIO_CHUNK_SECONDS,
        BitrateLadder(ENVIVIO_LADDER_KBPS),
        ENVIVIO_NUM_CHUNKS,
        variability=variability,
        seed=seed,
        title="envivio-vbr",
    )


def short_test_video(num_chunks: int = 8, num_levels: int = 3) -> VideoManifest:
    """A small video for unit tests and exhaustive-search cross-checks."""
    ladder = BitrateLadder(list(ENVIVIO_LADDER_KBPS)[:num_levels])
    return VideoManifest.cbr(
        ENVIVIO_CHUNK_SECONDS, ladder, num_chunks, title="short-test"
    )
