"""Video model: chunked manifests with per-level chunk sizes.

Section 3.1 of the paper models a video as ``K`` consecutive chunks of
``L`` seconds, each encoded at every bitrate in a ladder ``R``.  Chunk
``k`` at bitrate ``R_k`` has size ``d_k(R_k)``: in the constant-bitrate
(CBR) case ``d_k(R_k) = L * R_k``; in the variable-bitrate (VBR) case the
relationship differs per chunk.

:class:`VideoManifest` captures both cases as an explicit per-chunk,
per-level size table, which is also the piece of metadata the paper notes
the DASH standard should (but does not) mandate in the MPD.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["BitrateLadder", "VideoManifest"]


class BitrateLadder:
    """An ordered set of available bitrate levels, in kbps."""

    __slots__ = ("_levels",)

    def __init__(self, levels_kbps: Sequence[float]) -> None:
        if not levels_kbps:
            raise ValueError("a ladder needs at least one bitrate level")
        levels = tuple(float(x) for x in levels_kbps)
        if any(x <= 0 for x in levels):
            raise ValueError("bitrate levels must be positive")
        if list(levels) != sorted(levels):
            raise ValueError("bitrate levels must be sorted ascending")
        if len(set(levels)) != len(levels):
            raise ValueError("bitrate levels must be distinct")
        self._levels = levels

    @property
    def levels_kbps(self) -> Tuple[float, ...]:
        return self._levels

    def __len__(self) -> int:
        return len(self._levels)

    def __getitem__(self, index: int) -> float:
        return self._levels[index]

    def __iter__(self):
        return iter(self._levels)

    def __eq__(self, other) -> bool:
        return isinstance(other, BitrateLadder) and self._levels == other._levels

    def __hash__(self) -> int:
        return hash(self._levels)

    def __repr__(self) -> str:
        return f"BitrateLadder({list(self._levels)})"

    @property
    def min_kbps(self) -> float:
        return self._levels[0]

    @property
    def max_kbps(self) -> float:
        return self._levels[-1]

    def index_of(self, bitrate_kbps: float) -> int:
        """Index of an exact ladder level; raises for unknown rates."""
        for i, level in enumerate(self._levels):
            if math.isclose(level, bitrate_kbps, rel_tol=1e-9, abs_tol=1e-6):
                return i
        raise ValueError(f"{bitrate_kbps} kbps is not a ladder level of {self}")

    def highest_at_most(self, budget_kbps: float) -> int:
        """Index of the highest level <= budget (lowest level if none fit).

        This is the paper's canonical rate-based rule: "choose the maximum
        possible bitrate below the predicted throughput".
        """
        best = 0
        for i, level in enumerate(self._levels):
            if level <= budget_kbps:
                best = i
            else:
                break
        return best

    @staticmethod
    def uniform(min_kbps: float, max_kbps: float, count: int) -> "BitrateLadder":
        """Evenly spaced ladder, used by the bitrate-level sensitivity sweep."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count == 1:
            return BitrateLadder([min_kbps])
        if not (0 < min_kbps < max_kbps):
            raise ValueError("need 0 < min < max")
        step = (max_kbps - min_kbps) / (count - 1)
        return BitrateLadder([min_kbps + i * step for i in range(count)])

    @staticmethod
    def geometric(min_kbps: float, max_kbps: float, count: int) -> "BitrateLadder":
        """Geometrically spaced ladder (how real encoders space levels)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        if count == 1:
            return BitrateLadder([min_kbps])
        if not (0 < min_kbps < max_kbps):
            raise ValueError("need 0 < min < max")
        ratio = (max_kbps / min_kbps) ** (1.0 / (count - 1))
        return BitrateLadder([min_kbps * ratio**i for i in range(count)])


class VideoManifest:
    """A chunked video: ``K`` chunks of ``L`` seconds at ladder bitrates.

    Parameters
    ----------
    chunk_duration_s:
        ``L``, the play time of each chunk.
    ladder:
        The available bitrate levels ``R``.
    chunk_sizes_kilobits:
        ``chunk_sizes_kilobits[k][i]`` is ``d_k(R_i)`` in kilobits.  Use
        :meth:`cbr` when sizes are exactly ``L * R_i``.
    title:
        Optional label for reports.
    """

    __slots__ = ("_duration", "_ladder", "_sizes", "title")

    def __init__(
        self,
        chunk_duration_s: float,
        ladder: BitrateLadder,
        chunk_sizes_kilobits: Sequence[Sequence[float]],
        title: str = "",
    ) -> None:
        if chunk_duration_s <= 0:
            raise ValueError("chunk duration must be positive")
        if not chunk_sizes_kilobits:
            raise ValueError("a video needs at least one chunk")
        sizes: List[Tuple[float, ...]] = []
        for k, row in enumerate(chunk_sizes_kilobits):
            if len(row) != len(ladder):
                raise ValueError(
                    f"chunk {k} has {len(row)} sizes but the ladder has {len(ladder)} levels"
                )
            row_t = tuple(float(x) for x in row)
            if any(x <= 0 for x in row_t):
                raise ValueError(f"chunk {k} has a non-positive size")
            if list(row_t) != sorted(row_t):
                raise ValueError(f"chunk {k} sizes must increase with bitrate level")
            sizes.append(row_t)
        self._duration = float(chunk_duration_s)
        self._ladder = ladder
        self._sizes = tuple(sizes)
        self.title = title

    # ------------------------------------------------------------------

    @classmethod
    def cbr(
        cls,
        chunk_duration_s: float,
        ladder: BitrateLadder,
        num_chunks: int,
        title: str = "",
    ) -> "VideoManifest":
        """Constant-bitrate video: ``d_k(R) = L * R`` for every chunk."""
        if num_chunks < 1:
            raise ValueError("num_chunks must be >= 1")
        row = tuple(chunk_duration_s * r for r in ladder)
        return cls(chunk_duration_s, ladder, [row] * num_chunks, title=title)

    # ------------------------------------------------------------------

    @property
    def chunk_duration_s(self) -> float:
        return self._duration

    @property
    def ladder(self) -> BitrateLadder:
        return self._ladder

    @property
    def num_chunks(self) -> int:
        return len(self._sizes)

    @property
    def total_duration_s(self) -> float:
        return self.num_chunks * self._duration

    def __repr__(self) -> str:
        label = f" {self.title!r}" if self.title else ""
        return (
            f"<VideoManifest{label} chunks={self.num_chunks} "
            f"L={self._duration:g}s levels={len(self._ladder)}>"
        )

    def chunk_size_kilobits(self, chunk_index: int, level_index: int) -> float:
        """``d_k(R_i)`` — size of chunk ``k`` at ladder level ``i``."""
        if not 0 <= chunk_index < self.num_chunks:
            raise IndexError(f"chunk index {chunk_index} out of range")
        return self._sizes[chunk_index][level_index]

    def chunk_sizes_at_level(self, level_index: int) -> List[float]:
        """Sizes of every chunk at one ladder level."""
        if not 0 <= level_index < len(self._ladder):
            raise IndexError(f"level index {level_index} out of range")
        return [row[level_index] for row in self._sizes]

    def is_cbr(self, rel_tol: float = 1e-9) -> bool:
        """True when every chunk size equals ``L * R`` exactly."""
        for row in self._sizes:
            for size, rate in zip(row, self._ladder):
                if not math.isclose(size, self._duration * rate, rel_tol=rel_tol):
                    return False
        return True

    def effective_bitrate_kbps(self, chunk_index: int, level_index: int) -> float:
        """Actual per-chunk bitrate ``d_k(R_i) / L`` (differs from the
        nominal level for VBR encodes)."""
        return self.chunk_size_kilobits(chunk_index, level_index) / self._duration

    def with_ladder(self, ladder: BitrateLadder, title: str = "") -> "VideoManifest":
        """CBR re-encode of this video at a different ladder (same K, L)."""
        return VideoManifest.cbr(
            self._duration, ladder, self.num_chunks, title=title or self.title
        )

    def truncated(self, num_chunks: int) -> "VideoManifest":
        """The first ``num_chunks`` chunks of this video."""
        if not 1 <= num_chunks <= self.num_chunks:
            raise ValueError("num_chunks out of range")
        return VideoManifest(
            self._duration, self._ladder, self._sizes[:num_chunks], title=self.title
        )
