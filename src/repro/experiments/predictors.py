"""Predictor-accuracy race across fault profiles (the §7.3 extension).

The paper's sensitivity analysis (Section 7.3, Figure 11) perturbs the
*magnitude* of prediction error and watches QoE.  This experiment attacks
the error at its source: it races throughput predictors — the paper's
harmonic mean and EWMA, their idle-gap-corrected variants from
:mod:`repro.prediction.streaming`, and the clairvoyant oracle — against
each other under the fault profiles of :mod:`repro.faults.profiles`,
producing a predictor-accuracy-vs-QoE table.

Two accuracy metrics are reported per cell:

* ``active_mae`` — mean ``|predicted - active| / active`` where *active*
  is the rate over active-transfer time only (the Kairos capacity view;
  exactly the :class:`~repro.obs.events.PredictionSpan` ``error`` field).
  This is the metric a predictor should be judged on whenever on/off
  traffic patterns put dead time inside the download window, and the one
  the conformance tests pin: gap-corrected predictors must *strictly*
  reduce it vs their plain counterparts on the ``blackouts`` and
  ``lossy-link`` profiles.
* ``wall_mae`` — mean ``|predicted - actual| / actual`` against the
  wall-clock rate, i.e. the classic RobustMPC tracker error.  The gap
  correction deliberately trades this metric away on stalled chunks (it
  predicts capacity, not the stall), which is why it is reported but not
  gated on.

Determinism contract: results are bit-identical for ``workers=1`` and
``workers=N``.  Work units are fanned out in a fixed job order (profiles
x predictors x traces), ``Pool.map`` returns them in that same order, and
every parent-side aggregate is a sequential sum over cells in row order —
the same idiom as :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.fastmpc import FastMPCConfig, FastMPCController
from ..faults import apply_trace_faults
from ..faults.profiles import get_profile
from ..faults.spec import bandwidth_faults, link_faults
from ..obs.tracer import RingBufferSink, Tracer
from ..prediction import make_predictor
from ..sim.session import simulate_session
from ..traces.trace import Trace
from ..video.manifest import VideoManifest

__all__ = [
    "PREDICTOR_RACE_PREDICTORS",
    "PREDICTOR_RACE_PROFILES",
    "PredictorCell",
    "PredictorRaceRow",
    "PredictorRaceResult",
    "run_predictor_race",
]

#: Default line-up: the paper's two predictors, their gap-corrected
#: twins, and the clairvoyant anchor.
PREDICTOR_RACE_PREDICTORS: Tuple[str, ...] = (
    "harmonic",
    "ewma",
    "gap-harmonic",
    "gap-ewma",
    "oracle",
)

#: Default fault profiles: the degradation baseline plus the two
#: stall-heavy profiles the gap correction is built for.
PREDICTOR_RACE_PROFILES: Tuple[str, ...] = ("clean", "blackouts", "lossy-link")

#: Fast-but-faithful table for the racing controller; the race compares
#: predictors against each other under one fixed controller, so the
#: discretization only needs to be identical across cells, not deployed-
#: scale.
_RACE_TABLE_CONFIG = FastMPCConfig(buffer_bins=24, throughput_bins=24, horizon=5)


@dataclass(frozen=True)
class PredictorCell:
    """One (profile, predictor, trace) session's accuracy and QoE."""

    profile: str
    predictor: str
    trace_name: str
    chunks: int
    active_abs_error_sum: float
    active_signed_error_sum: float
    worst_abs_error: float
    wall_abs_error_sum: float
    idle_gap_fraction: float
    gapped_chunks: int
    gapped_mae: float
    smooth_chunks: int
    smooth_mae: float
    qoe_total: float
    rebuffer_s: float
    mean_bitrate_kbps: float

    @property
    def active_mae(self) -> float:
        return self.active_abs_error_sum / self.chunks if self.chunks else 0.0

    @property
    def wall_mae(self) -> float:
        return self.wall_abs_error_sum / self.chunks if self.chunks else 0.0

    def to_dict(self) -> Dict[str, object]:
        doc = asdict(self)
        doc["active_mae"] = self.active_mae
        doc["wall_mae"] = self.wall_mae
        return doc


@dataclass(frozen=True)
class PredictorRaceRow:
    """One (profile, predictor) aggregate over every raced trace."""

    profile: str
    predictor: str
    sessions: int
    chunks: int
    active_mae: float
    wall_mae: float
    mean_signed_error: float
    worst_abs_error: float
    idle_gap_fraction: float
    gapped_chunks: int
    smooth_chunks: int
    qoe_mean: float
    rebuffer_mean_s: float
    mean_bitrate_kbps: float

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class PredictorRaceResult:
    """The full race: per-session cells plus per-row aggregates."""

    cells: Tuple[PredictorCell, ...]
    profiles: Tuple[str, ...]
    predictors: Tuple[str, ...]

    def rows(self) -> List[PredictorRaceRow]:
        """Aggregate cells into one row per (profile, predictor).

        All sums run sequentially over cells in their fixed job order, so
        the floats are identical however many workers produced the cells.
        """
        out: List[PredictorRaceRow] = []
        for profile in self.profiles:
            for predictor in self.predictors:
                group = [
                    c
                    for c in self.cells
                    if c.profile == profile and c.predictor == predictor
                ]
                if not group:
                    continue
                chunks = 0
                abs_sum = 0.0
                signed_sum = 0.0
                wall_sum = 0.0
                worst = 0.0
                gap_frac_sum = 0.0
                gapped = 0
                smooth = 0
                qoe_sum = 0.0
                rebuffer_sum = 0.0
                bitrate_sum = 0.0
                for c in group:
                    chunks += c.chunks
                    abs_sum += c.active_abs_error_sum
                    signed_sum += c.active_signed_error_sum
                    wall_sum += c.wall_abs_error_sum
                    if c.worst_abs_error > worst:
                        worst = c.worst_abs_error
                    gap_frac_sum += c.idle_gap_fraction
                    gapped += c.gapped_chunks
                    smooth += c.smooth_chunks
                    qoe_sum += c.qoe_total
                    rebuffer_sum += c.rebuffer_s
                    bitrate_sum += c.mean_bitrate_kbps
                n = len(group)
                out.append(
                    PredictorRaceRow(
                        profile=profile,
                        predictor=predictor,
                        sessions=n,
                        chunks=chunks,
                        active_mae=abs_sum / chunks if chunks else 0.0,
                        wall_mae=wall_sum / chunks if chunks else 0.0,
                        mean_signed_error=signed_sum / chunks if chunks else 0.0,
                        worst_abs_error=worst,
                        idle_gap_fraction=gap_frac_sum / n,
                        gapped_chunks=gapped,
                        smooth_chunks=smooth,
                        qoe_mean=qoe_sum / n,
                        rebuffer_mean_s=rebuffer_sum / n,
                        mean_bitrate_kbps=bitrate_sum / n,
                    )
                )
        return out

    def row(self, profile: str, predictor: str) -> PredictorRaceRow:
        for r in self.rows():
            if r.profile == profile and r.predictor == predictor:
                return r
        raise KeyError(f"no row for profile={profile!r} predictor={predictor!r}")

    def strictly_reduces(
        self, profile: str, corrected: str, baseline: str
    ) -> bool:
        """True when ``corrected`` has strictly lower active-rate MAE
        than ``baseline`` on ``profile`` (the acceptance gate)."""
        return self.row(profile, corrected).active_mae < self.row(
            profile, baseline
        ).active_mae

    def table(self) -> str:
        """The predictor-accuracy-vs-QoE table, formatted for humans."""
        header = (
            f"{'profile':<12} {'predictor':<14} {'chunks':>6} "
            f"{'active_mae':>10} {'wall_mae':>9} {'gapfrac':>8} "
            f"{'rebuf_s':>8} {'qoe_mean':>12}"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows():
            lines.append(
                f"{r.profile:<12} {r.predictor:<14} {r.chunks:>6d} "
                f"{r.active_mae:>10.4f} {r.wall_mae:>9.4f} "
                f"{r.idle_gap_fraction:>8.4f} {r.rebuffer_mean_s:>8.2f} "
                f"{r.qoe_mean:>12.1f}"
            )
        return "\n".join(lines)

    def describe(self) -> str:
        return self.table()

    def to_dict(self) -> Dict[str, object]:
        return {
            "profiles": list(self.profiles),
            "predictors": list(self.predictors),
            "rows": [r.to_dict() for r in self.rows()],
            "cells": [c.to_dict() for c in self.cells],
        }


def _race_cell(args) -> PredictorCell:
    """Process-pool work unit: one (profile, predictor, trace) session.

    Bandwidth faults are compiled into the trace; link faults replay
    deterministically from ``fault_seed``.  Prediction accuracy is read
    off the session's :class:`~repro.obs.events.PredictionSpan` stream,
    the wall-rate error off the controller's tracker.
    """
    profile_name, predictor_name, trace, manifest, config, fault_seed = args
    profile = get_profile(profile_name)
    bandwidth = bandwidth_faults(profile.trace_faults)
    links = link_faults(profile.trace_faults)
    faulted = apply_trace_faults(trace, bandwidth) if bandwidth else trace
    algorithm = FastMPCController(
        predictor=make_predictor(predictor_name), config=config
    )
    sink = RingBufferSink(capacity=100_000)
    tracer = Tracer(sinks=[sink], session_id=f"{profile_name}/{predictor_name}")
    session = simulate_session(
        algorithm,
        faulted,
        manifest,
        link_faults=links,
        fault_seed=fault_seed,
        tracer=tracer,
    )
    spans = [
        e
        for e in sink.events()
        if e.kind == "prediction-span" and e.predictor == algorithm.predictor.name
    ]
    abs_sum = 0.0
    signed_sum = 0.0
    worst = 0.0
    for span in spans:
        err = span.error
        abs_err = abs(err)
        abs_sum += abs_err
        signed_sum += err
        if abs_err > worst:
            worst = abs_err
    tracker = algorithm.error_tracker
    wall_sum = 0.0
    for err in tracker.errors:
        wall_sum += abs(err)
    strata = tracker.stratified_mean_abs_error()
    bitrates = session.bitrates_kbps
    return PredictorCell(
        profile=profile_name,
        predictor=predictor_name,
        trace_name=trace.name,
        chunks=len(spans),
        active_abs_error_sum=abs_sum,
        active_signed_error_sum=signed_sum,
        worst_abs_error=worst,
        wall_abs_error_sum=wall_sum,
        idle_gap_fraction=tracker.idle_gap_fraction(),
        gapped_chunks=strata["gapped"]["chunks"],
        gapped_mae=strata["gapped"]["mae"],
        smooth_chunks=strata["smooth"]["chunks"],
        smooth_mae=strata["smooth"]["mae"],
        qoe_total=session.qoe().total,
        rebuffer_s=session.total_rebuffer_s,
        mean_bitrate_kbps=sum(bitrates) / len(bitrates) if bitrates else 0.0,
    )


def run_predictor_race(
    traces: Sequence[Trace],
    manifest: VideoManifest,
    predictors: Sequence[str] = PREDICTOR_RACE_PREDICTORS,
    profiles: Sequence[str] = PREDICTOR_RACE_PROFILES,
    config: Optional[FastMPCConfig] = None,
    workers: int = 1,
    fault_seed_base: int = 100,
    chunksize: int = 2,
) -> PredictorRaceResult:
    """Race ``predictors`` across ``profiles`` over ``traces``.

    Every cell drives the same FastMPC controller (fixed ``config``
    discretization) so the only moving part is the predictor.  Trace
    ``i`` always uses ``fault_seed_base + i`` for its link faults, so
    each predictor faces an identical fault replay on a given trace.

    ``workers=1`` runs serially; larger values fan cells out over a
    process pool.  Either way the result is bit-identical.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if not predictors:
        raise ValueError("need at least one predictor name")
    if not profiles:
        raise ValueError("need at least one fault profile")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    for name in profiles:
        get_profile(name)  # fail fast on typos, before any fan-out
    config = config if config is not None else _RACE_TABLE_CONFIG
    jobs = [
        (profile, predictor, trace, manifest, config, fault_seed_base + i)
        for profile in profiles
        for predictor in predictors
        for i, trace in enumerate(traces)
    ]
    if workers == 1:
        cells = [_race_cell(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            cells = pool.map(_race_cell, jobs, chunksize=chunksize)
    return PredictorRaceResult(
        cells=tuple(cells),
        profiles=tuple(profiles),
        predictors=tuple(predictors),
    )
