"""Per-figure reproduction entry points (Figures 7–10, Table 1, §7.4).

Each function regenerates the data behind one exhibit of the paper's
evaluation and returns a structured result; the ``benchmarks/`` tree and
the CLI print them through :mod:`repro.experiments.report`.  The sweeps of
Figures 11/12 live in :mod:`repro.experiments.sensitivity`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..abr.base import ABRAlgorithm, SessionConfig
from ..abr.registry import paper_algorithms
from ..core.fastmpc import FastMPCController
from ..core.table import TableSizeReport
from ..core.fastmpc import table_size_sweep as _table_size_sweep
from ..prediction.errors import PredictionErrorTracker
from ..prediction.harmonic import HarmonicMeanPredictor
from ..qoe import QoEWeights
from ..sim.session import simulate_session
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from ..video.presets import (
    DEFAULT_BUFFER_CAPACITY_S,
    ENVIVIO_CHUNK_SECONDS,
    ENVIVIO_LADDER_KBPS,
)
from .runner import ResultSet, run_matrix

__all__ = [
    "DatasetCharacteristics",
    "prediction_profile",
    "figure7",
    "figure8",
    "DetailSeries",
    "figure9_10",
    "table1",
    "OverheadSample",
    "measure_overhead",
]


# ----------------------------------------------------------------------
# Figure 7 — dataset characteristics
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DatasetCharacteristics:
    """Per-trace statistics of one dataset (one panel triple of Fig. 7)."""

    dataset: str
    mean_kbps: tuple
    std_kbps: tuple
    mean_abs_prediction_error: tuple
    mean_signed_prediction_error: tuple
    overestimation_fraction: tuple
    worst_abs_prediction_error: tuple


def prediction_profile(
    trace: Trace,
    chunk_duration_s: float = ENVIVIO_CHUNK_SECONDS,
    num_chunks: int = 65,
    window: int = 5,
) -> PredictionErrorTracker:
    """Harmonic-mean prediction errors over successive chunk-length
    windows of a trace — the algorithm-independent view of Figure 7's
    error panel."""
    predictor = HarmonicMeanPredictor(window=window)
    tracker = PredictionErrorTracker(window=window)
    horizon = min(num_chunks, int(trace.duration_s / chunk_duration_s))
    observed = trace.chunk_throughputs(chunk_duration_s, horizon)
    for i, actual in enumerate(observed):
        if i >= window:  # only score once the predictor has a full window
            tracker.record(predictor.predict(1)[0], actual)
        predictor.observe_kbps(actual)
    return tracker


def figure7(
    datasets: Mapping[str, Sequence[Trace]],
    chunk_duration_s: float = ENVIVIO_CHUNK_SECONDS,
) -> Dict[str, DatasetCharacteristics]:
    """Mean/std/prediction-error distributions per dataset (Figure 7)."""
    out: Dict[str, DatasetCharacteristics] = {}
    for name, traces in datasets.items():
        if not traces:
            raise ValueError(f"dataset {name!r} is empty")
        means, stds = [], []
        mean_abs, mean_signed, over, worst = [], [], [], []
        for trace in traces:
            stats = trace.stats()
            means.append(stats.mean_kbps)
            stds.append(stats.std_kbps)
            tracker = prediction_profile(trace, chunk_duration_s)
            mean_abs.append(tracker.mean_abs_error())
            mean_signed.append(tracker.mean_signed_error())
            over.append(tracker.overestimation_fraction())
            worst.append(tracker.worst_abs_error())
        out[name] = DatasetCharacteristics(
            dataset=name,
            mean_kbps=tuple(means),
            std_kbps=tuple(stds),
            mean_abs_prediction_error=tuple(mean_abs),
            mean_signed_prediction_error=tuple(mean_signed),
            overestimation_fraction=tuple(over),
            worst_abs_prediction_error=tuple(worst),
        )
    return out


# ----------------------------------------------------------------------
# Figure 8 — normalized QoE CDFs per dataset
# ----------------------------------------------------------------------

def figure8(
    datasets: Mapping[str, Sequence[Trace]],
    manifest: VideoManifest,
    algorithms: Optional[Mapping[str, ABRAlgorithm]] = None,
    config: Optional[SessionConfig] = None,
    backend: str = "emulation",
) -> Dict[str, ResultSet]:
    """The main comparison: every algorithm on every dataset (Figure 8).

    Default backend is the byte-level emulator, matching the paper's "real
    player evaluation"; pass ``backend="sim"`` for the faster simulator.
    """
    algorithms = algorithms if algorithms is not None else paper_algorithms()
    config = config if config is not None else SessionConfig()
    return {
        name: run_matrix(
            algorithms, traces, manifest, config, backend=backend, dataset=name
        )
        for name, traces in datasets.items()
    }


# ----------------------------------------------------------------------
# Figures 9 & 10 — per-metric detail CDFs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DetailSeries:
    """Per-algorithm session values for the three detail metrics."""

    dataset: str
    average_bitrate_kbps: Dict[str, tuple]
    average_bitrate_change_kbps: Dict[str, tuple]
    total_rebuffer_s: Dict[str, tuple]


def figure9_10(results: ResultSet) -> DetailSeries:
    """Extract Figure 9/10's three CDF panels from a Figure 8 run."""
    algorithms = results.algorithms()
    return DetailSeries(
        dataset=results.dataset,
        average_bitrate_kbps={
            a: tuple(results.metric_values(a, "average_bitrate_kbps"))
            for a in algorithms
        },
        average_bitrate_change_kbps={
            a: tuple(results.metric_values(a, "average_bitrate_change_kbps"))
            for a in algorithms
        },
        total_rebuffer_s={
            a: tuple(results.metric_values(a, "total_rebuffer_s"))
            for a in algorithms
        },
    )


# ----------------------------------------------------------------------
# Table 1 — FastMPC table sizes
# ----------------------------------------------------------------------

def table1(
    discretization_levels: Sequence[int] = (50, 100, 200, 500),
    ladder_kbps: Sequence[float] = ENVIVIO_LADDER_KBPS,
    chunk_duration_s: float = ENVIVIO_CHUNK_SECONDS,
    buffer_capacity_s: float = DEFAULT_BUFFER_CAPACITY_S,
    weights: Optional[QoEWeights] = None,
    horizon: int = 5,
    cache_dir: Optional[str] = None,
) -> List[TableSizeReport]:
    """Full vs run-length-coded table size per discretization level."""
    weights = weights if weights is not None else QoEWeights.balanced()
    return _table_size_sweep(
        ladder_kbps,
        chunk_duration_s,
        buffer_capacity_s,
        weights,
        discretization_levels=discretization_levels,
        horizon=horizon,
        cache_dir=cache_dir,
    )


# ----------------------------------------------------------------------
# Section 7.4 — CPU / memory overhead
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OverheadSample:
    """Per-algorithm decision cost (the §7.4 microbenchmark)."""

    algorithm: str
    mean_decision_us: float
    max_decision_us: float
    decisions: int
    table_bytes: int  # 0 for table-free algorithms

    def describe(self) -> str:
        return (
            f"{self.algorithm:>14} | mean decision {self.mean_decision_us:9.1f} us"
            f" | max {self.max_decision_us:9.1f} us"
            f" | table {self.table_bytes / 1000:7.1f} kB"
        )


def measure_overhead(
    algorithms: Mapping[str, ABRAlgorithm],
    trace: Trace,
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
) -> List[OverheadSample]:
    """Time every bitrate decision an algorithm makes over one session.

    The per-decision timer wraps ``select_bitrate`` only — the quantity
    that sits on the player's critical path before each chunk request.
    """
    config = config if config is not None else SessionConfig()
    samples: List[OverheadSample] = []
    for name, algorithm in algorithms.items():
        timings: List[float] = []
        original = algorithm.select_bitrate

        def timed_select(observation, _original=original, _timings=timings):
            start = time.perf_counter()
            level = _original(observation)
            _timings.append((time.perf_counter() - start) * 1e6)
            return level

        algorithm.select_bitrate = timed_select  # type: ignore[method-assign]
        try:
            simulate_session(algorithm, trace, manifest, config)
        finally:
            algorithm.select_bitrate = original  # type: ignore[method-assign]
        table_bytes = 0
        if isinstance(algorithm, FastMPCController) and algorithm.table is not None:
            table_bytes = algorithm.table.rle.size_bytes()
        samples.append(
            OverheadSample(
                algorithm=name,
                mean_decision_us=sum(timings) / len(timings),
                max_decision_us=max(timings),
                decisions=len(timings),
                table_bytes=table_bytes,
            )
        )
    return samples
