"""Cross-controller leaderboard, served: the zoo behind the service.

``repro-abr leaderboard`` answers the deployment-direction question the
A/B layer exists for: *with every controller behind the same serving
boundary, which arm wins on which network?*  Per dataset it starts one
in-process :class:`~repro.service.server.DecisionServer` configured with
an equal-weight experiment over the requested controllers (the FastMPC
table arm keeps the vectorized lookup; every other arm is a stateful
:mod:`repro.abr.registry` instance behind an
:class:`~repro.service.backends.AlgorithmBackend`), drives it with the
closed-loop trace replayer, and reads the per-arm QoE roll-up off the
load report.

Because arm assignment is a pure hash of ``(salt, session_id)`` and the
load generator names its sessions deterministically, the same
``(sessions, salt)`` pair reproduces the same arm split on every run —
the leaderboard is seeded end to end.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..qoe import QoEWeights
from ..traces import make_generator
from ..video import envivio
from .report import render_table

__all__ = [
    "DEFAULT_LEADERBOARD_CONTROLLERS",
    "LeaderboardCell",
    "LeaderboardConfig",
    "LeaderboardResult",
    "run_leaderboard",
]

#: The default line-up: the served table plus one representative of each
#: controller family in the zoo (buffer-based threshold, chunk-map,
#: Lyapunov, index-policy).
DEFAULT_LEADERBOARD_CONTROLLERS: Tuple[str, ...] = (
    "table",
    "bb",
    "bba-1",
    "bola",
    "das-ip",
)


@dataclass(frozen=True)
class LeaderboardConfig:
    """Shape of one leaderboard run."""

    controllers: Tuple[str, ...] = DEFAULT_LEADERBOARD_CONTROLLERS
    datasets: Tuple[str, ...] = ("fcc", "hsdpa")
    sessions: int = 60
    chunks_per_session: int = 30
    concurrency: int = 8
    seed: int = 0
    trace_duration_s: float = 320.0
    #: Experiment salt: fixed by default so the arm split (and therefore
    #: the whole leaderboard) is reproducible run to run.
    salt: str = "leaderboard"
    #: FastMPC table discretization for the ``table`` arm.
    bins: int = 25
    horizon: int = 5
    deadline_s: float = 5.0
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.controllers:
            raise ValueError("need at least one controller")
        if len(set(self.controllers)) != len(self.controllers):
            raise ValueError(f"duplicate controllers in {self.controllers}")
        if not self.datasets:
            raise ValueError("need at least one dataset")
        if self.sessions < 1 or self.chunks_per_session < 1:
            raise ValueError("need at least one session and one chunk")


@dataclass(frozen=True)
class LeaderboardCell:
    """One (dataset, arm) cell of the leaderboard."""

    dataset: str
    arm: str
    controller: str
    sessions: int
    decisions: int
    degraded: int
    qoe_mean: Optional[float]

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "arm": self.arm,
            "controller": self.controller,
            "sessions": self.sessions,
            "decisions": self.decisions,
            "degraded": self.degraded,
            "qoe_mean": self.qoe_mean,
        }


@dataclass
class LeaderboardResult:
    """All cells plus run-level accounting."""

    config: LeaderboardConfig
    cells: List[LeaderboardCell] = field(default_factory=list)
    errors: int = 0
    wall_s: float = 0.0

    def dataset_cells(self, dataset: str) -> List[LeaderboardCell]:
        return [c for c in self.cells if c.dataset == dataset]

    def render(self) -> str:
        """The per-arm QoE table, one block per dataset, best arm first."""
        blocks = []
        for dataset in self.config.datasets:
            rows = []
            cells = sorted(
                self.dataset_cells(dataset),
                key=lambda c: (c.qoe_mean is None, -(c.qoe_mean or 0.0)),
            )
            for cell in cells:
                rows.append(
                    [
                        cell.arm,
                        cell.controller,
                        cell.sessions,
                        cell.decisions,
                        cell.degraded,
                        "-" if cell.qoe_mean is None else round(cell.qoe_mean, 1),
                    ]
                )
            table = render_table(
                ["arm", "controller", "sessions", "decisions", "degraded", "QoE mean"],
                rows,
            )
            blocks.append(f"=== {dataset} ===\n{table}")
        return "\n\n".join(blocks)

    def to_dict(self) -> dict:
        return {
            "controllers": list(self.config.controllers),
            "datasets": list(self.config.datasets),
            "sessions": self.config.sessions,
            "chunks_per_session": self.config.chunks_per_session,
            "seed": self.config.seed,
            "salt": self.config.salt,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _build_experiment(controllers: Sequence[str], salt: str):
    from ..service import ExperimentArm, ExperimentConfig

    # Equal weights: the leaderboard compares controllers, so every arm
    # deserves the same slice of the session population.  Unknown names
    # fail when the service instantiates the backends (set_experiment),
    # before any traffic is served.
    arms = tuple(
        ExperimentArm(name=name, controller=name, weight=1.0) for name in controllers
    )
    return ExperimentConfig(arms=arms, salt=salt)


async def _run_dataset(
    dataset: str, config: LeaderboardConfig, table, experiment
) -> "tuple":
    from ..service import (
        DecisionServer,
        DecisionService,
        LoadTestConfig,
        run_loadtest,
    )

    manifest = envivio()
    service = DecisionService(
        manifest.ladder.levels_kbps, table=table, experiment=experiment
    )
    server = DecisionServer(service, "127.0.0.1", 0)
    await server.start()
    try:
        load = LoadTestConfig(
            sessions=config.sessions,
            chunks_per_session=config.chunks_per_session,
            concurrency=config.concurrency,
            dataset=dataset,
            seed=config.seed,
            trace_duration_s=config.trace_duration_s,
            deadline_s=config.deadline_s,
        )
        traces = make_generator(dataset, seed=config.seed).generate_many(
            config.sessions, config.trace_duration_s
        )
        report = await run_loadtest(
            "127.0.0.1", server.bound_port, load, traces=traces
        )
        return report, service.metrics.snapshot()
    finally:
        await server.close()


def run_leaderboard(config: LeaderboardConfig) -> LeaderboardResult:
    """Run the full leaderboard and return the per-(dataset, arm) cells."""
    import time

    from ..core.fastmpc import FastMPCConfig, build_decision_table

    experiment = _build_experiment(config.controllers, config.salt)
    controller_of = {arm.name: arm.controller for arm in experiment.arms}

    table = None
    if any(arm.controller == "table" for arm in experiment.arms):
        manifest = envivio()
        table = build_decision_table(
            manifest.ladder.levels_kbps,
            manifest.chunk_duration_s,
            30.0,
            QoEWeights.balanced(),
            config=FastMPCConfig(
                buffer_bins=config.bins,
                throughput_bins=config.bins,
                horizon=config.horizon,
            ),
            cache_dir=config.cache_dir,
        )

    result = LeaderboardResult(config=config)
    t0 = time.perf_counter()
    for dataset in config.datasets:
        report, _ = asyncio.run(_run_dataset(dataset, config, table, experiment))
        result.errors += report.errors
        # Every configured arm gets a row, even one the hash left empty at
        # this session count — a zero row is a visible coverage gap, not a
        # silently missing line.
        for arm in experiment.arms:
            stats = report.arms.get(arm.name, {})
            qoe_count = stats.get("qoe_count", 0)
            result.cells.append(
                LeaderboardCell(
                    dataset=dataset,
                    arm=arm.name,
                    controller=controller_of[arm.name],
                    sessions=stats.get("sessions", 0),
                    decisions=stats.get("decisions", 0),
                    degraded=stats.get("degraded", 0),
                    qoe_mean=(
                        stats.get("qoe_sum", 0.0) / qoe_count if qoe_count else None
                    ),
                )
            )
    result.wall_s = time.perf_counter() - t0
    return result
