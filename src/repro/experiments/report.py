"""Plain-text rendering of experiment results.

The benchmarks and the CLI print the same rows/series the paper's figures
plot; these helpers keep that output consistent and greppable (one parser-
friendly table per exhibit).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from .cdf import fraction_at_most, fraction_below, median, percentile
from .figures import DatasetCharacteristics, DetailSeries
from .runner import ResultSet

__all__ = [
    "render_table",
    "render_distribution_summary",
    "render_result_set",
    "render_figure7",
    "render_detail_series",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a separator line."""
    if not headers:
        raise ValueError("need at least one column")
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for col, cell in zip(columns, row):
            col.append(f"{cell:.4f}" if isinstance(cell, float) else str(cell))
    widths = [max(len(cell) for cell in col) for col in columns]
    def fmt(cells: List[str]) -> str:
        return " | ".join(cell.rjust(w) for cell, w in zip(cells, widths))
    lines = [fmt([c[0] for c in columns])]
    lines.append("-+-".join("-" * w for w in widths))
    for i in range(1, len(columns[0])):
        lines.append(fmt([c[i] for c in columns]))
    return "\n".join(lines)


def render_distribution_summary(
    label: str, values: Sequence[float], unit: str = ""
) -> str:
    """p10/p50/p90 one-liner for a per-session distribution.

    An empty distribution (a run where every session was dropped, e.g.
    under fault injection) renders as ``(no values)`` rather than
    crashing the whole report.
    """
    if not values:
        return f"{label:>28}: (no values)"
    suffix = f" {unit}" if unit else ""
    return (
        f"{label:>28}: p10 {percentile(values, 10):10.3f}"
        f" | median {median(values):10.3f}"
        f" | p90 {percentile(values, 90):10.3f}{suffix}"
    )


def render_result_set(results: ResultSet) -> str:
    """The Figure 8 summary: per-algorithm n-QoE distribution."""
    rows = []
    for algorithm in results.algorithms():
        nqoe = results.n_qoe_values(algorithm)
        if nqoe:
            rows.append(
                [
                    algorithm,
                    round(percentile(nqoe, 10), 4),
                    round(median(nqoe), 4),
                    round(percentile(nqoe, 90), 4),
                    round(fraction_below(nqoe, 0.0), 4),
                ]
            )
        else:
            # No surviving sessions for this algorithm: keep the row so
            # the table stays complete, but mark it instead of crashing.
            rows.append([algorithm, "n/a", "n/a", "n/a", "n/a"])
    title = f"normalized QoE ({results.dataset})" if results.dataset else "normalized QoE"
    table = render_table(
        ["algorithm", "p10", "median", "p90", "frac n-QoE<0"], rows
    )
    return f"{title}\n{table}"


def render_figure7(characteristics: Mapping[str, DatasetCharacteristics]) -> str:
    """Dataset characteristics summary (Figure 7)."""
    rows = []
    for name, ch in characteristics.items():
        if ch.mean_kbps:
            rows.append(
                [
                    name,
                    round(median(ch.mean_kbps), 1),
                    round(median(ch.std_kbps), 1),
                    round(median(ch.mean_abs_prediction_error), 4),
                    round(max(ch.worst_abs_prediction_error), 4),
                    round(median(ch.overestimation_fraction), 4),
                ]
            )
        else:
            rows.append([name, "n/a", "n/a", "n/a", "n/a", "n/a"])
    return render_table(
        [
            "dataset",
            "median mean kbps",
            "median std kbps",
            "median |err|",
            "worst |err|",
            "overest. frac",
        ],
        rows,
    )


def render_detail_series(detail: DetailSeries) -> str:
    """Figures 9/10: the three per-metric distribution summaries."""
    lines = [f"detail metrics ({detail.dataset})" if detail.dataset else "detail metrics"]
    sections = [
        ("average bitrate", detail.average_bitrate_kbps, "kbps"),
        ("avg bitrate change", detail.average_bitrate_change_kbps, "kbps/chunk"),
        ("total rebuffer", detail.total_rebuffer_s, "s"),
    ]
    for title, series, unit in sections:
        lines.append(f"-- {title} --")
        for algorithm, values in series.items():
            lines.append(render_distribution_summary(algorithm, values, unit))
        if title == "total rebuffer":
            for algorithm, values in series.items():
                share = (
                    f"{fraction_at_most(values, 1e-9):.0%}" if values else "n/a"
                )
                lines.append(
                    f"{algorithm:>28}: zero-rebuffer sessions {share}"
                )
    return "\n".join(lines)
