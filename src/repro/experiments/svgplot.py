"""Dependency-free SVG rendering of the paper's figure types.

The evaluation produces two plot shapes — CDFs (Figures 7-10) and
parameter-sweep line charts (Figures 11-12).  This module renders both as
standalone SVG files using nothing but the standard library, so the
repository can materialise its figures without a plotting stack.

The output is deliberately simple: one polyline per series, axes with
tick labels, and a legend.  Styling matches across figures.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from .cdf import ecdf

__all__ = ["render_cdf_svg", "render_lines_svg", "save_svg"]

PathLike = Union[str, os.PathLike]

_PALETTE = (
    "#1f6feb",  # blue
    "#d1242f",  # red
    "#1a7f37",  # green
    "#9a6700",  # ochre
    "#8250df",  # purple
    "#57606a",  # grey
    "#bf3989",  # magenta
    "#0b7285",  # teal
)

_WIDTH, _HEIGHT = 640, 420
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 20, 36, 56


def _nice_ticks(low: float, high: float, target: int = 6) -> List[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(target - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    first = math.floor(low / step) * step
    ticks = []
    t = first
    while t <= high + 1e-12:
        if t >= low - 1e-12:
            ticks.append(round(t, 10))
        t += step
    return ticks or [low, high]


def _format_tick(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:g}"


class _Canvas:
    """Minimal SVG assembly with a data-space to pixel-space transform."""

    def __init__(self, x_range: Tuple[float, float], y_range: Tuple[float, float]):
        self.x0, self.x1 = x_range
        self.y0, self.y1 = y_range
        if self.x1 <= self.x0:
            self.x1 = self.x0 + 1.0
        if self.y1 <= self.y0:
            self.y1 = self.y0 + 1.0
        self.parts: List[str] = []

    def px(self, x: float) -> float:
        frac = (x - self.x0) / (self.x1 - self.x0)
        return _MARGIN_L + frac * (_WIDTH - _MARGIN_L - _MARGIN_R)

    def py(self, y: float) -> float:
        frac = (y - self.y0) / (self.y1 - self.y0)
        return _HEIGHT - _MARGIN_B - frac * (_HEIGHT - _MARGIN_T - _MARGIN_B)

    def add(self, fragment: str) -> None:
        self.parts.append(fragment)

    def axes(self, x_label: str, y_label: str, title: str) -> None:
        left, right = _MARGIN_L, _WIDTH - _MARGIN_R
        top, bottom = _MARGIN_T, _HEIGHT - _MARGIN_B
        self.add(
            f'<rect x="{left}" y="{top}" width="{right - left}" '
            f'height="{bottom - top}" fill="none" stroke="#444" />'
        )
        for tx in _nice_ticks(self.x0, self.x1):
            px = self.px(tx)
            self.add(
                f'<line x1="{px:.1f}" y1="{bottom}" x2="{px:.1f}" '
                f'y2="{bottom + 5}" stroke="#444" />'
                f'<text x="{px:.1f}" y="{bottom + 18}" text-anchor="middle" '
                f'class="tick">{_format_tick(tx)}</text>'
            )
        for ty in _nice_ticks(self.y0, self.y1):
            py = self.py(ty)
            self.add(
                f'<line x1="{left - 5}" y1="{py:.1f}" x2="{left}" '
                f'y2="{py:.1f}" stroke="#444" />'
                f'<text x="{left - 8}" y="{py + 4:.1f}" text-anchor="end" '
                f'class="tick">{_format_tick(ty)}</text>'
                f'<line x1="{left}" y1="{py:.1f}" x2="{right}" y2="{py:.1f}" '
                f'stroke="#eee" />'
            )
        self.add(
            f'<text x="{(left + right) / 2}" y="{_HEIGHT - 14}" '
            f'text-anchor="middle" class="label">{x_label}</text>'
        )
        self.add(
            f'<text x="18" y="{(top + bottom) / 2}" text-anchor="middle" '
            f'class="label" transform="rotate(-90 18 {(top + bottom) / 2})">'
            f"{y_label}</text>"
        )
        self.add(
            f'<text x="{(left + right) / 2}" y="{top - 12}" '
            f'text-anchor="middle" class="title">{title}</text>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], color: str) -> None:
        coords = " ".join(f"{self.px(x):.1f},{self.py(y):.1f}" for x, y in points)
        self.add(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.8" />'
        )

    def legend(self, names: Sequence[str]) -> None:
        x = _MARGIN_L + 10
        y = _MARGIN_T + 14
        for i, name in enumerate(names):
            color = _PALETTE[i % len(_PALETTE)]
            self.add(
                f'<line x1="{x}" y1="{y - 4}" x2="{x + 22}" y2="{y - 4}" '
                f'stroke="{color}" stroke-width="2.5" />'
                f'<text x="{x + 28}" y="{y}" class="tick">{name}</text>'
            )
            y += 16

    def render(self) -> str:
        style = (
            "<style>text{font-family:Helvetica,Arial,sans-serif}"
            ".tick{font-size:11px;fill:#333}.label{font-size:13px;fill:#111}"
            ".title{font-size:14px;fill:#111;font-weight:bold}</style>"
        )
        body = "\n".join(self.parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
            f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">\n'
            f"{style}\n{body}\n</svg>\n"
        )


def render_cdf_svg(
    series: Mapping[str, Sequence[float]],
    title: str = "",
    x_label: str = "value",
) -> str:
    """A Figure 8/9/10-style CDF plot: one curve per algorithm."""
    if not series:
        raise ValueError("need at least one series")
    lows, highs = [], []
    for values in series.values():
        if not values:
            raise ValueError("series must be non-empty")
        lows.append(min(values))
        highs.append(max(values))
    canvas = _Canvas((min(lows), max(highs)), (0.0, 1.0))
    canvas.axes(x_label, "CDF", title)
    for i, (name, values) in enumerate(series.items()):
        xs, fs = ecdf(values)
        points: List[Tuple[float, float]] = [(xs[0], 0.0)]
        for x, f in zip(xs, fs):
            points.append((x, points[-1][1]))  # horizontal step
            points.append((x, f))
        canvas.polyline(points, _PALETTE[i % len(_PALETTE)])
    canvas.legend(list(series))
    return canvas.render()


def render_lines_svg(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    x_label: str = "parameter",
    y_label: str = "n-QoE",
) -> str:
    """A Figure 11/12-style sweep plot: one line per algorithm."""
    if not series:
        raise ValueError("need at least one series")
    if not x_values:
        raise ValueError("need x values")
    y_min = min(min(v) for v in series.values())
    y_max = max(max(v) for v in series.values())
    pad = 0.05 * (y_max - y_min or 1.0)
    canvas = _Canvas(
        (min(x_values), max(x_values)), (y_min - pad, y_max + pad)
    )
    canvas.axes(x_label, y_label, title)
    for i, (name, values) in enumerate(series.items()):
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length != x length")
        canvas.polyline(list(zip(x_values, values)), _PALETTE[i % len(_PALETTE)])
    canvas.legend(list(series))
    return canvas.render()


def save_svg(svg_text: str, path: PathLike) -> Path:
    """Write an SVG document produced by the render functions."""
    path = Path(path)
    if not svg_text.lstrip().startswith("<svg"):
        raise ValueError("not an SVG document")
    path.write_text(svg_text)
    return path
