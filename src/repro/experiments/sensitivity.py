"""Sensitivity-analysis sweeps — Figures 11 and 12 of the paper.

Each function runs one of Section 7.3/7.4's parameter sweeps over a set of
traces and returns a :class:`SweepResult` whose series are per-algorithm
aggregate normalized QoE per parameter value.  Simulation backend
throughout, exactly as in the paper ("For sensitivity analysis we evaluate
different algorithms using a custom simulation framework").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..abr.base import ABRAlgorithm, SessionConfig
from ..abr.buffer_based import BufferBasedAlgorithm
from ..abr.rate_based import RateBasedAlgorithm
from ..core.fastmpc import FastMPCConfig, FastMPCController
from ..core.mpc import MPCController, make_mpc_opt
from ..core.robust import RobustMPCController
from ..prediction.harmonic import HarmonicMeanPredictor
from ..prediction.oracle import NoisyOraclePredictor, OraclePredictor
from ..qoe import QoEWeights
from ..sim.session import StartupPolicy
from ..traces.trace import Trace
from ..video.manifest import BitrateLadder, VideoManifest
from .cdf import median
from .runner import ResultSet, run_matrix

__all__ = [
    "SweepResult",
    "prediction_error_sweep",
    "qoe_preference_sweep",
    "buffer_size_sweep",
    "startup_time_sweep",
    "bitrate_levels_sweep",
    "discretization_sweep",
    "horizon_sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """One sensitivity sweep: series[algo][i] is the aggregate n-QoE at
    parameter_values[i]."""

    parameter_name: str
    parameter_values: tuple
    series: Dict[str, tuple]

    def best_algorithm_at(self, index: int) -> str:
        """Which algorithm wins at one parameter setting."""
        return max(self.series, key=lambda a: self.series[a][index])

    def describe(self) -> str:
        lines = [f"sweep over {self.parameter_name}"]
        header = f"{'value':>12} | " + " | ".join(
            f"{name:>12}" for name in self.series
        )
        lines.append(header)
        for i, value in enumerate(self.parameter_values):
            row = f"{value!s:>12} | " + " | ".join(
                f"{self.series[name][i]:12.4f}" for name in self.series
            )
            lines.append(row)
        return "\n".join(lines)


def _aggregate(
    results: ResultSet, algorithms: Sequence[str], how: str = "median"
) -> Dict[str, float]:
    if how == "median":
        return {name: median(results.n_qoe_values(name)) for name in algorithms}
    if how == "mean":
        return {
            name: sum(results.n_qoe_values(name)) / len(results.n_qoe_values(name))
            for name in algorithms
        }
    raise ValueError(f"unknown aggregate {how!r}; expected 'median' or 'mean'")


def _collect(
    parameter_name: str,
    values: Sequence,
    run_one: Callable[[object], Dict[str, float]],
) -> SweepResult:
    series: Dict[str, List[float]] = {}
    for value in values:
        point = run_one(value)
        for name, nqoe in point.items():
            series.setdefault(name, []).append(nqoe)
    return SweepResult(
        parameter_name=parameter_name,
        parameter_values=tuple(values),
        series={k: tuple(v) for k, v in series.items()},
    )


# ----------------------------------------------------------------------
# Figure 11a — prediction error
# ----------------------------------------------------------------------

def prediction_error_sweep(
    traces: Sequence[Trace],
    manifest: VideoManifest,
    error_levels: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.49),
    config: Optional[SessionConfig] = None,
    include_robust: bool = True,
    seed: int = 0,
) -> SweepResult:
    """n-QoE vs average prediction-error level (Figure 11a).

    MPC and RB consume a noisy oracle at the given error level; BB ignores
    throughput entirely, so its series is flat — the paper's headline
    crossover is MPC dipping below BB beyond ~25% error.
    """
    config = config if config is not None else SessionConfig()

    def run_one(err: float) -> Dict[str, float]:
        algorithms: Dict[str, ABRAlgorithm] = {
            "mpc": MPCController(NoisyOraclePredictor(err, seed=seed)),
            "rb": RateBasedAlgorithm(NoisyOraclePredictor(err, seed=seed + 1)),
            "bb": BufferBasedAlgorithm(),
        }
        if include_robust:
            algorithms["robust-mpc"] = RobustMPCController(
                NoisyOraclePredictor(err, seed=seed + 2)
            )
        results = run_matrix(algorithms, traces, manifest, config)
        return _aggregate(results, list(algorithms))

    return _collect("prediction_error", list(error_levels), run_one)


# ----------------------------------------------------------------------
# Figure 11b — user QoE preferences
# ----------------------------------------------------------------------

def qoe_preference_sweep(
    traces: Sequence[Trace],
    manifest: VideoManifest,
    presets: Sequence[QoEWeights] = (),
    buffer_capacity_s: float = 30.0,
) -> SweepResult:
    """n-QoE under the three preference profiles (Figure 11b)."""
    if not presets:
        presets = (
            QoEWeights.balanced(),
            QoEWeights.avoid_instability(),
            QoEWeights.avoid_rebuffering(),
        )

    def run_one(weights: QoEWeights) -> Dict[str, float]:
        config = SessionConfig(buffer_capacity_s=buffer_capacity_s, weights=weights)
        algorithms: Dict[str, ABRAlgorithm] = {
            "mpc-opt": make_mpc_opt(),
            "fastmpc": FastMPCController(),
            "bb": BufferBasedAlgorithm(),
            "rb": RateBasedAlgorithm(),
        }
        results = run_matrix(algorithms, traces, manifest, config)
        return _aggregate(results, list(algorithms))

    sweep = _collect("qoe_preference", list(presets), run_one)
    return SweepResult(
        parameter_name=sweep.parameter_name,
        parameter_values=tuple(w.label for w in presets),
        series=sweep.series,
    )


# ----------------------------------------------------------------------
# Figure 11c — playout buffer size
# ----------------------------------------------------------------------

def buffer_size_sweep(
    traces: Sequence[Trace],
    manifest: VideoManifest,
    buffer_sizes_s: Sequence[float] = (10.0, 20.0, 30.0, 40.0, 50.0),
    weights: Optional[QoEWeights] = None,
) -> SweepResult:
    """n-QoE vs ``Bmax`` (Figure 11c): gains until ~25 s, then a plateau;
    RB is the least affected because it ignores the buffer."""
    weights = weights if weights is not None else QoEWeights.balanced()

    def run_one(bmax: float) -> Dict[str, float]:
        config = SessionConfig(buffer_capacity_s=bmax, weights=weights)
        algorithms: Dict[str, ABRAlgorithm] = {
            "mpc-opt": make_mpc_opt(),
            "fastmpc": FastMPCController(),
            "bb": BufferBasedAlgorithm(),
            "rb": RateBasedAlgorithm(),
        }
        results = run_matrix(algorithms, traces, manifest, config)
        return _aggregate(results, list(algorithms))

    return _collect("buffer_size_s", list(buffer_sizes_s), run_one)


# ----------------------------------------------------------------------
# Figure 11d — fixed startup delay
# ----------------------------------------------------------------------

def startup_time_sweep(
    traces: Sequence[Trace],
    manifest: VideoManifest,
    startup_times_s: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 10.0),
    config: Optional[SessionConfig] = None,
) -> SweepResult:
    """n-QoE (excluding the startup term) vs a fixed startup delay
    (Figure 11d): more pre-roll buffer helps every algorithm."""
    config = config if config is not None else SessionConfig()

    def run_one(ts: float) -> Dict[str, float]:
        algorithms: Dict[str, ABRAlgorithm] = {
            "mpc-opt": make_mpc_opt(),
            "fastmpc": FastMPCController(),
            "bb": BufferBasedAlgorithm(),
            "rb": RateBasedAlgorithm(),
        }
        results = run_matrix(
            algorithms,
            traces,
            manifest,
            config,
            startup_policy=StartupPolicy.FIXED,
            fixed_startup_delay_s=ts,
            include_startup_in_qoe=False,
        )
        return _aggregate(results, list(algorithms))

    return _collect("startup_time_s", list(startup_times_s), run_one)


# ----------------------------------------------------------------------
# Section 7.3 "not shown" — number of bitrate levels
# ----------------------------------------------------------------------

def bitrate_levels_sweep(
    traces: Sequence[Trace],
    manifest: VideoManifest,
    level_counts: Sequence[int] = (2, 3, 5, 8, 12, 20),
    config: Optional[SessionConfig] = None,
) -> SweepResult:
    """n-QoE vs ladder granularity.

    The paper reports (without a figure) that BB and MPC improve with
    finer ladders while RB first improves then *degrades* as it starts
    switching too often.  Ladders are evenly spaced over the original
    [Rmin, Rmax].
    """
    config = config if config is not None else SessionConfig()
    r_min = manifest.ladder.min_kbps
    r_max = manifest.ladder.max_kbps

    def run_one(count: int) -> Dict[str, float]:
        ladder = BitrateLadder.uniform(r_min, r_max, count)
        video = manifest.with_ladder(ladder)
        algorithms: Dict[str, ABRAlgorithm] = {
            "mpc": MPCController(),
            "bb": BufferBasedAlgorithm(),
            "rb": RateBasedAlgorithm(),
        }
        results = run_matrix(algorithms, traces, video, config)
        return _aggregate(results, list(algorithms))

    return _collect("bitrate_levels", list(level_counts), run_one)


# ----------------------------------------------------------------------
# Figure 12a — FastMPC discretization granularity
# ----------------------------------------------------------------------

def discretization_sweep(
    traces: Sequence[Trace],
    manifest: VideoManifest,
    discretization_levels: Sequence[int] = (5, 10, 20, 50, 100),
    config: Optional[SessionConfig] = None,
    throughput_spacing: str = "linear",
    seed: int = 0,
) -> SweepResult:
    """FastMPC n-QoE vs table bin count (Figure 12a), with both perfect
    prediction and the harmonic-mean predictor.

    Throughput bins default to *linear* spacing here — the layout the
    paper's Figure 5 table sketches — because the figure's point is the
    damage done by coarse quantization.  (The deployment default in
    :class:`FastMPCConfig` is log spacing, which is kinder at coarse bin
    counts; the spacing ablation bench compares the two.)"""
    config = config if config is not None else SessionConfig()

    def run_one(levels: int) -> Dict[str, float]:
        table_config = FastMPCConfig(
            buffer_bins=levels,
            throughput_bins=levels,
            throughput_spacing=throughput_spacing,
        )
        algorithms: Dict[str, ABRAlgorithm] = {
            "fastmpc-perfect": FastMPCController(
                predictor=OraclePredictor(), config=table_config
            ),
            "fastmpc-harmonic": FastMPCController(
                predictor=HarmonicMeanPredictor(), config=table_config
            ),
        }
        results = run_matrix(algorithms, traces, manifest, config)
        return _aggregate(results, list(algorithms))

    return _collect("discretization_levels", list(discretization_levels), run_one)


# ----------------------------------------------------------------------
# Figure 12b — look-ahead horizon
# ----------------------------------------------------------------------

def horizon_sweep(
    traces: Sequence[Trace],
    manifest: VideoManifest,
    horizons: Sequence[int] = (2, 3, 4, 5, 6, 7, 8, 9),
    error_levels: Sequence[float] = (0.10, 0.15, 0.20),
    config: Optional[SessionConfig] = None,
    aggregate: str = "mean",
    seed: int = 0,
) -> SweepResult:
    """MPC n-QoE vs look-ahead horizon at several prediction-error levels
    (Figure 12b): gains grow then saturate around the paper's h = 5.

    Aggregates by mean by default: per-trace medians are noisy here
    because a single decision difference early in a session compounds."""
    config = config if config is not None else SessionConfig()

    def run_one(horizon: int) -> Dict[str, float]:
        algorithms: Dict[str, ABRAlgorithm] = {
            f"mpc-err{int(err * 100)}": MPCController(
                NoisyOraclePredictor(err, seed=seed), horizon=horizon
            )
            for err in error_levels
        }
        results = run_matrix(algorithms, traces, manifest, config)
        return _aggregate(results, list(algorithms), how=aggregate)

    return _collect("horizon", list(horizons), run_one)
