"""Multiprocess experiment execution.

The paper's full-scale runs (1000 traces x 6 algorithms x 3 datasets) are
embarrassingly parallel across (algorithm, trace) pairs.  This module
fans :func:`repro.experiments.runner.run_matrix` out over a process pool.

To stay fork/spawn-safe, work units reference algorithms by *registry
name* (each worker constructs its own instance) and traces by value
(traces are small, immutable, and picklable).  Results are identical to
the serial runner for deterministic algorithms — a property pinned by
``tests/experiments/test_parallel.py``.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence

from ..abr.base import SessionConfig
from ..abr.registry import create
from ..core.offline import fluid_upper_bound
from ..sim.session import StartupPolicy, simulate_session
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from .runner import ExperimentRecord, ResultSet, _score_session

__all__ = ["run_matrix_parallel"]


def _run_one(args) -> ExperimentRecord:
    """Process-pool work unit: one (algorithm name, trace) session."""
    (
        dataset,
        algorithm_name,
        trace,
        manifest,
        config,
        startup_policy_value,
        fixed_startup_delay_s,
        include_startup,
        optimal,
    ) = args
    algorithm = create(algorithm_name)
    session = simulate_session(
        algorithm,
        trace,
        manifest,
        config,
        startup_policy=StartupPolicy(startup_policy_value),
        fixed_startup_delay_s=fixed_startup_delay_s,
    )
    return _score_session(dataset, algorithm_name, session, optimal, include_startup)


def run_matrix_parallel(
    algorithm_names: Sequence[str],
    traces: Sequence[Trace],
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
    workers: Optional[int] = None,
    startup_policy: StartupPolicy = StartupPolicy.FIRST_CHUNK,
    fixed_startup_delay_s: float = 0.0,
    include_startup_in_qoe: bool = True,
    dataset: str = "",
    chunksize: int = 4,
) -> ResultSet:
    """Parallel counterpart of :func:`run_matrix` (simulation backend).

    Parameters
    ----------
    algorithm_names:
        Registry names (see :func:`repro.abr.registry.available`); each
        worker builds its own instances, so no cross-process state leaks.
    workers:
        Pool size; defaults to the CPU count.
    """
    if not algorithm_names:
        raise ValueError("need at least one algorithm name")
    if not traces:
        raise ValueError("need at least one trace")
    config = config if config is not None else SessionConfig()

    bound_weights = config.weights
    if not include_startup_in_qoe:
        from ..qoe import QoEWeights

        bound_weights = QoEWeights(
            config.weights.switching, config.weights.rebuffering, 0.0,
            label=config.weights.label,
        )
    optima = [
        fluid_upper_bound(
            trace,
            manifest,
            weights=bound_weights,
            quality=config.quality,
            buffer_capacity_s=config.buffer_capacity_s,
        )
        for trace in traces
    ]

    jobs = [
        (
            dataset,
            name,
            trace,
            manifest,
            config,
            startup_policy.value,
            fixed_startup_delay_s,
            include_startup_in_qoe,
            optima[i],
        )
        for name in algorithm_names
        for i, trace in enumerate(traces)
    ]
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        records: List[ExperimentRecord] = [_run_one(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            records = pool.map(_run_one, jobs, chunksize=chunksize)
    return ResultSet(records, dataset=dataset)
