"""Multiprocess experiment execution.

The paper's full-scale runs (1000 traces x 6 algorithms x 3 datasets) are
embarrassingly parallel across (algorithm, trace) pairs.  This module
fans :func:`repro.experiments.runner.run_matrix` out over a process pool.
The per-trace offline bounds are parallel too: they are computed inside
the same pool (one work unit per trace) before the sessions fan out,
instead of serially in the parent.

To stay fork/spawn-safe, work units reference algorithms by *registry
name* (each worker constructs its own instance) and traces by value
(traces are small, immutable, and picklable).  Results are identical to
the serial runner for deterministic algorithms — a property pinned by
``tests/experiments/test_parallel.py``.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence

from ..abr.base import SessionConfig
from ..abr.registry import create
from ..sim.session import StartupPolicy, simulate_session
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from .persistence import cached_fluid_upper_bound
from .runner import ExperimentRecord, ResultSet, _score_session, bound_weights_for

__all__ = ["run_matrix_parallel"]


def _compute_bound(args) -> float:
    """Process-pool work unit: the offline-optimal bound of one trace."""
    trace, manifest, weights, quality, buffer_capacity_s, cache_dir = args
    return cached_fluid_upper_bound(
        trace,
        manifest,
        weights=weights,
        quality=quality,
        buffer_capacity_s=buffer_capacity_s,
        cache_dir=cache_dir,
    )


def _run_one(args) -> ExperimentRecord:
    """Process-pool work unit: one (algorithm name, trace) session."""
    (
        dataset,
        algorithm_name,
        trace,
        manifest,
        config,
        startup_policy_value,
        fixed_startup_delay_s,
        include_startup,
        optimal,
    ) = args
    algorithm = create(algorithm_name)
    session = simulate_session(
        algorithm,
        trace,
        manifest,
        config,
        startup_policy=StartupPolicy(startup_policy_value),
        fixed_startup_delay_s=fixed_startup_delay_s,
    )
    return _score_session(dataset, algorithm_name, session, optimal, include_startup)


def run_matrix_parallel(
    algorithm_names: Sequence[str],
    traces: Sequence[Trace],
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
    workers: Optional[int] = None,
    startup_policy: StartupPolicy = StartupPolicy.FIRST_CHUNK,
    fixed_startup_delay_s: float = 0.0,
    include_startup_in_qoe: bool = True,
    dataset: str = "",
    chunksize: int = 4,
    cache_dir: Optional[str] = None,
) -> ResultSet:
    """Parallel counterpart of :func:`run_matrix` (simulation backend).

    Parameters
    ----------
    algorithm_names:
        Registry names (see :func:`repro.abr.registry.available`); each
        worker builds its own instances, so no cross-process state leaks.
    workers:
        Pool size; defaults to the CPU count.
    cache_dir:
        Optional disk-cache directory for the per-trace offline bounds
        (defaults to the ``REPRO_CACHE_DIR`` environment variable); a
        warm cache makes the bound phase a pure read.
    """
    if not algorithm_names:
        raise ValueError("need at least one algorithm name")
    if not traces:
        raise ValueError("need at least one trace")
    config = config if config is not None else SessionConfig()
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")

    bound_weights = bound_weights_for(config, include_startup_in_qoe)
    bound_jobs = [
        (
            trace,
            manifest,
            bound_weights,
            config.quality,
            config.buffer_capacity_s,
            cache_dir,
        )
        for trace in traces
    ]

    def session_jobs(optima: Sequence[float]) -> list:
        return [
            (
                dataset,
                name,
                trace,
                manifest,
                config,
                startup_policy.value,
                fixed_startup_delay_s,
                include_startup_in_qoe,
                optima[i],
            )
            for name in algorithm_names
            for i, trace in enumerate(traces)
        ]

    if workers == 1:
        optima = [_compute_bound(job) for job in bound_jobs]
        records: List[ExperimentRecord] = [
            _run_one(job) for job in session_jobs(optima)
        ]
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            # Bounds first, in the same pool — one unit per trace — so
            # the expensive offline phase is parallel too rather than a
            # serial parent-side prologue.
            optima = pool.map(_compute_bound, bound_jobs, chunksize=1)
            records = pool.map(_run_one, session_jobs(optima), chunksize=chunksize)
    return ResultSet(records, dataset=dataset)
