"""Empirical-distribution helpers for the evaluation figures.

Nearly every figure in Section 7 is a CDF over per-session values; these
utilities compute the curves and the summary statistics (medians,
percentiles, fractions) the paper's text quotes.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "ecdf",
    "percentile",
    "median",
    "fraction_below",
    "fraction_at_most",
    "cdf_at",
]


def ecdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    if not values:
        raise ValueError("need at least one value")
    ordered = sorted(values)
    n = len(ordered)
    return ordered, [(i + 1) / n for i in range(n)]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("need at least one value")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def median(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly below ``threshold`` (e.g. "10% of
    sessions have n-QoE < 0")."""
    if not values:
        raise ValueError("need at least one value")
    return sum(1 for v in values if v < threshold) / len(values)


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= ``threshold`` (e.g. "zero rebuffer in 65% of
    all cases")."""
    if not values:
        raise ValueError("need at least one value")
    return sum(1 for v in values if v <= threshold) / len(values)


def cdf_at(values: Sequence[float], grid: Sequence[float]) -> List[float]:
    """CDF evaluated on an explicit grid (for aligned plotting/tables)."""
    if not values:
        raise ValueError("need at least one value")
    ordered = sorted(values)
    n = len(ordered)
    out = []
    for g in grid:
        count = 0
        for v in ordered:
            if v <= g:
                count += 1
            else:
                break
        out.append(count / n)
    return out
