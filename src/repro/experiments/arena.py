"""The arena scenario matrix: population x controller mix x fault profile.

Each *cell* is one full :func:`repro.arena.run_arena` run; the matrix
fans cells out over a process pool exactly like the fleet driver fans
out shards: cells are self-contained picklable configs, workers return
plain ``to_dict()`` payloads, and the parent folds them **in cell
order**, so the result is bit-identical for 1 worker or N — pinned by
``tests/arena/test_arena_determinism.py``.

Per-cohort QoE rollups ride the fleet's lossless
:class:`~repro.fleet.aggregate.ArmAggregate` histograms, so the
matrix-wide per-arm summary (:attr:`ArenaMatrixResult.cohorts`) is the
exact aggregate one process would have produced, however the cells were
partitioned across workers.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arena.metrics import CohortRollup
from ..arena.runner import ArenaConfig, run_arena
from ..arena.schedule import ScheduleConfig
from ..service.experiment import ExperimentConfig

__all__ = [
    "ArenaCell",
    "ArenaMatrixResult",
    "build_arena_matrix",
    "run_arena_matrix",
    "render_arena_matrix",
]


@dataclass(frozen=True)
class ArenaCell:
    """One named cell of the scenario matrix."""

    name: str
    config: ArenaConfig


def build_arena_matrix(
    base: ArenaConfig,
    player_counts: Sequence[int],
    mixes: Mapping[str, ExperimentConfig],
    profiles: Sequence[str],
) -> List[ArenaCell]:
    """The full cross product, cells named ``"<players>p|<mix>|<profile>"``.

    ``base`` supplies everything the axes do not vary (trace, video,
    arrival model, cross traffic, window width, seed).  Mixes iterate in
    sorted-name order so the cell list — and with it every downstream
    fold — is deterministic.
    """
    if not player_counts:
        raise ValueError("need at least one player count")
    if not mixes:
        raise ValueError("need at least one controller mix")
    if not profiles:
        raise ValueError("need at least one fault profile")
    cells: List[ArenaCell] = []
    for players in player_counts:
        for mix_name in sorted(mixes):
            for profile in profiles:
                schedule = replace(
                    base.schedule, players=players, mix=mixes[mix_name]
                )
                cells.append(
                    ArenaCell(
                        name=f"{players}p|{mix_name}|{profile}",
                        config=replace(
                            base, schedule=schedule, profile=profile
                        ),
                    )
                )
    return cells


class ArenaMatrixResult:
    """All cells of one matrix run, plus the matrix-wide cohort rollup."""

    def __init__(self, cells: "Dict[str, dict]") -> None:
        self.cells = cells
        self.cohorts: Dict[str, CohortRollup] = {}
        self.sessions = 0
        # Fold per-arm rollups across cells in insertion (= cell) order;
        # every CohortRollup field is associative, so the outcome does
        # not depend on how cells were sharded over workers.
        for payload in cells.values():
            self.sessions += int(payload["players"])
            for arm in sorted(payload["cohorts"]):
                rollup = CohortRollup.from_dict(payload["cohorts"][arm])
                mine = self.cohorts.get(arm)
                if mine is None:
                    mine = self.cohorts[arm] = CohortRollup.empty()
                mine.merge(rollup)

    def to_dict(self) -> dict:
        return {
            "sessions": self.sessions,
            "cells": {name: self.cells[name] for name in sorted(self.cells)},
            "cohorts": {
                arm: self.cohorts[arm].to_dict() for arm in sorted(self.cohorts)
            },
        }

    def to_json(self) -> str:
        """Canonical byte-stable encoding (the determinism contract)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def _run_cell(cell: ArenaCell) -> Tuple[str, dict]:
    """Process-pool work unit: one arena cell, summarised."""
    return cell.name, run_arena(cell.config).to_dict()


def run_arena_matrix(
    cells: Sequence[ArenaCell],
    workers: Optional[int] = None,
) -> ArenaMatrixResult:
    """Run every cell; deterministic and worker-count independent.

    ``workers=1`` runs serially in-process (no pool); ``None`` uses the
    CPU count.  Results fold in cell order either way.
    """
    if not cells:
        raise ValueError("need at least one cell")
    names = [cell.name for cell in cells]
    if len(set(names)) != len(names):
        raise ValueError("cell names must be unique")
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        pairs = [_run_cell(cell) for cell in cells]
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            pairs = pool.map(_run_cell, cells, chunksize=1)
    return ArenaMatrixResult(dict(pairs))


def render_arena_matrix(result: ArenaMatrixResult) -> str:
    """A plain-text summary: one row per cell, then the cohort rollup."""
    lines = ["cell                               players    jain    util  switches"]
    for name in sorted(result.cells):
        cell = result.cells[name]
        totals = cell["totals"]
        jain = totals["jain"]
        util = totals["utilization"]
        jain_s = "-" if jain is None else f"{jain:.4f}"
        util_s = "-" if util is None else f"{util:.4f}"
        lines.append(
            f"{name:<35}{cell['players']:>7}{jain_s:>8}{util_s:>8}"
            f"{totals['switches']:>10}"
        )
    lines.append("")
    lines.append(
        "cohort            sessions  departed   mean QoE  rebuffer s  bitrate kbps"
    )
    for arm in sorted(result.cohorts):
        rollup = result.cohorts[arm]
        mean_qoe = (
            rollup.qoe_total_sum / rollup.sessions if rollup.sessions else 0.0
        )
        lines.append(
            f"{arm:<18}{rollup.sessions:>8}{rollup.departed:>10}"
            f"{mean_qoe:>11.1f}"
            f"{rollup.mean_rebuffer_s:>12.3f}"
            f"{rollup.mean_bitrate_kbps:>14.1f}"
        )
    return "\n".join(lines)
