"""Saving and reloading experiment results.

Long experiment campaigns (the paper's 1000-trace runs) should not have to
re-simulate to re-plot.  This module serialises a
:class:`~repro.experiments.runner.ResultSet` to CSV — one row per scored
session, columns for every metric the figures consume — and loads it back
into a fully functional ``ResultSet`` (aggregations, medians, detail
series all work; only the full per-chunk logs are not retained).

A JSON sidecar variant is provided for sweep results, preserving the
series structure of Figures 11/12.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import List, Union

from ..qoe import QoEBreakdown, QoEWeights
from ..sim.metrics import SessionMetrics
from .runner import ExperimentRecord, ResultSet
from .sensitivity import SweepResult

__all__ = [
    "save_result_set_csv",
    "load_result_set_csv",
    "save_sweep_json",
    "load_sweep_json",
    "save_session_log_csv",
]

PathLike = Union[str, os.PathLike]

_METRIC_FIELDS = (
    "num_chunks",
    "average_bitrate_kbps",
    "average_bitrate_change_kbps",
    "num_switches",
    "total_rebuffer_s",
    "num_rebuffer_events",
    "startup_delay_s",
    "total_wall_time_s",
    "average_throughput_kbps",
)

_BREAKDOWN_FIELDS = (
    "quality_total",
    "switching_total",
    "rebuffer_seconds",
    "startup_seconds",
)

_WEIGHT_FIELDS = ("switching", "rebuffering", "startup", "label")


def save_result_set_csv(results: ResultSet, path: PathLike) -> None:
    """One row per scored session; lossless for everything figures need."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["dataset", "algorithm", "trace_name", "optimal_qoe", "n_qoe"]
            + [f"metric_{f}" for f in _METRIC_FIELDS]
            + [f"qoe_{f}" for f in _BREAKDOWN_FIELDS]
            + [f"weight_{f}" for f in _WEIGHT_FIELDS]
        )
        for r in results.records:
            writer.writerow(
                [r.dataset, r.algorithm, r.trace_name, r.optimal_qoe, r.n_qoe]
                + [getattr(r.metrics, f) for f in _METRIC_FIELDS]
                + [getattr(r.breakdown, f) for f in _BREAKDOWN_FIELDS]
                + [getattr(r.breakdown.weights, f) for f in _WEIGHT_FIELDS]
            )


def load_result_set_csv(path: PathLike) -> ResultSet:
    """Inverse of :func:`save_result_set_csv`."""
    path = Path(path)
    records: List[ExperimentRecord] = []
    dataset = ""
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            weights = QoEWeights(
                float(row["weight_switching"]),
                float(row["weight_rebuffering"]),
                float(row["weight_startup"]),
                label=row["weight_label"],
            )
            breakdown = QoEBreakdown(
                quality_total=float(row["qoe_quality_total"]),
                switching_total=float(row["qoe_switching_total"]),
                rebuffer_seconds=float(row["qoe_rebuffer_seconds"]),
                startup_seconds=float(row["qoe_startup_seconds"]),
                weights=weights,
            )
            metrics = SessionMetrics(
                algorithm_name=row["algorithm"],
                trace_name=row["trace_name"],
                num_chunks=int(float(row["metric_num_chunks"])),
                average_bitrate_kbps=float(row["metric_average_bitrate_kbps"]),
                average_bitrate_change_kbps=float(
                    row["metric_average_bitrate_change_kbps"]
                ),
                num_switches=int(float(row["metric_num_switches"])),
                total_rebuffer_s=float(row["metric_total_rebuffer_s"]),
                num_rebuffer_events=int(float(row["metric_num_rebuffer_events"])),
                startup_delay_s=float(row["metric_startup_delay_s"]),
                total_wall_time_s=float(row["metric_total_wall_time_s"]),
                average_throughput_kbps=float(
                    row["metric_average_throughput_kbps"]
                ),
            )
            dataset = row["dataset"]
            records.append(
                ExperimentRecord(
                    dataset=row["dataset"],
                    algorithm=row["algorithm"],
                    trace_name=row["trace_name"],
                    metrics=metrics,
                    breakdown=breakdown,
                    optimal_qoe=float(row["optimal_qoe"]),
                    n_qoe=float(row["n_qoe"]),
                )
            )
    if not records:
        raise ValueError(f"{path}: no experiment records found")
    return ResultSet(records, dataset=dataset)


def save_sweep_json(sweep: SweepResult, path: PathLike) -> None:
    """Persist a Figure 11/12 sweep (series keyed by algorithm)."""
    path = Path(path)
    payload = {
        "parameter_name": sweep.parameter_name,
        "parameter_values": list(sweep.parameter_values),
        "series": {name: list(values) for name, values in sweep.series.items()},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def load_sweep_json(path: PathLike) -> SweepResult:
    """Inverse of :func:`save_sweep_json`."""
    payload = json.loads(Path(path).read_text())
    for key in ("parameter_name", "parameter_values", "series"):
        if key not in payload:
            raise ValueError(f"{path}: missing {key!r}")
    return SweepResult(
        parameter_name=payload["parameter_name"],
        parameter_values=tuple(payload["parameter_values"]),
        series={k: tuple(v) for k, v in payload["series"].items()},
    )


def save_session_log_csv(session, path: PathLike) -> None:
    """Per-chunk player log — the paper's Section 6 logging functions.

    One row per chunk with everything the modified dash.js logged:
    bitrate, download time, measured throughput, buffer levels, stall and
    wait times.  Useful for inspecting a single session's dynamics.
    """
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "chunk_index",
                "level_index",
                "bitrate_kbps",
                "size_kilobits",
                "download_time_s",
                "throughput_kbps",
                "buffer_before_s",
                "buffer_after_s",
                "rebuffer_s",
                "waited_s",
                "wall_time_end_s",
            ]
        )
        for r in session.records:
            writer.writerow(
                [
                    r.chunk_index,
                    r.level_index,
                    r.bitrate_kbps,
                    r.size_kilobits,
                    r.download_time_s,
                    r.throughput_kbps,
                    r.buffer_before_s,
                    r.buffer_after_s,
                    r.rebuffer_s,
                    r.waited_s,
                    r.wall_time_end_s,
                ]
            )
