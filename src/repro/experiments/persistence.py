"""Saving and reloading experiment results.

Long experiment campaigns (the paper's 1000-trace runs) should not have to
re-simulate to re-plot.  This module serialises a
:class:`~repro.experiments.runner.ResultSet` to CSV — one row per scored
session, columns for every metric the figures consume — and loads it back
into a fully functional ``ResultSet`` (aggregations, medians, detail
series all work; only the full per-chunk logs are not retained).

A JSON sidecar variant is provided for sweep results, preserving the
series structure of Figures 11/12.
"""

from __future__ import annotations

import csv
import hashlib
import json
import logging
import os
import struct
from pathlib import Path
from typing import List, Optional, Union

from ..core.offline import fluid_upper_bound
from ..core.table import DecisionTable
from ..qoe import QoEBreakdown, QoEWeights
from ..sim.metrics import SessionMetrics
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from .runner import ExperimentRecord, ResultSet
from .sensitivity import SweepResult

__all__ = [
    "save_result_set_csv",
    "load_result_set_csv",
    "save_sweep_json",
    "load_sweep_json",
    "save_session_log_csv",
    "CACHE_DIR_ENV",
    "cache_root",
    "save_cached_table",
    "load_cached_table",
    "publish_table",
    "map_published_table",
    "cached_fluid_upper_bound",
    "clear_disk_cache",
]

PathLike = Union[str, os.PathLike]

logger = logging.getLogger(__name__)

_METRIC_FIELDS = (
    "num_chunks",
    "average_bitrate_kbps",
    "average_bitrate_change_kbps",
    "num_switches",
    "total_rebuffer_s",
    "num_rebuffer_events",
    "startup_delay_s",
    "total_wall_time_s",
    "average_throughput_kbps",
)

_BREAKDOWN_FIELDS = (
    "quality_total",
    "switching_total",
    "rebuffer_seconds",
    "startup_seconds",
)

_WEIGHT_FIELDS = ("switching", "rebuffering", "startup", "label")


def save_result_set_csv(results: ResultSet, path: PathLike) -> None:
    """One row per scored session; lossless for everything figures need."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["dataset", "algorithm", "trace_name", "optimal_qoe", "n_qoe"]
            + [f"metric_{f}" for f in _METRIC_FIELDS]
            + [f"qoe_{f}" for f in _BREAKDOWN_FIELDS]
            + [f"weight_{f}" for f in _WEIGHT_FIELDS]
        )
        for r in results.records:
            writer.writerow(
                [r.dataset, r.algorithm, r.trace_name, r.optimal_qoe, r.n_qoe]
                + [getattr(r.metrics, f) for f in _METRIC_FIELDS]
                + [getattr(r.breakdown, f) for f in _BREAKDOWN_FIELDS]
                + [getattr(r.breakdown.weights, f) for f in _WEIGHT_FIELDS]
            )


def load_result_set_csv(path: PathLike) -> ResultSet:
    """Inverse of :func:`save_result_set_csv`."""
    path = Path(path)
    records: List[ExperimentRecord] = []
    dataset = ""
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            weights = QoEWeights(
                float(row["weight_switching"]),
                float(row["weight_rebuffering"]),
                float(row["weight_startup"]),
                label=row["weight_label"],
            )
            breakdown = QoEBreakdown(
                quality_total=float(row["qoe_quality_total"]),
                switching_total=float(row["qoe_switching_total"]),
                rebuffer_seconds=float(row["qoe_rebuffer_seconds"]),
                startup_seconds=float(row["qoe_startup_seconds"]),
                weights=weights,
            )
            metrics = SessionMetrics(
                algorithm_name=row["algorithm"],
                trace_name=row["trace_name"],
                num_chunks=int(float(row["metric_num_chunks"])),
                average_bitrate_kbps=float(row["metric_average_bitrate_kbps"]),
                average_bitrate_change_kbps=float(
                    row["metric_average_bitrate_change_kbps"]
                ),
                num_switches=int(float(row["metric_num_switches"])),
                total_rebuffer_s=float(row["metric_total_rebuffer_s"]),
                num_rebuffer_events=int(float(row["metric_num_rebuffer_events"])),
                startup_delay_s=float(row["metric_startup_delay_s"]),
                total_wall_time_s=float(row["metric_total_wall_time_s"]),
                average_throughput_kbps=float(
                    row["metric_average_throughput_kbps"]
                ),
            )
            dataset = row["dataset"]
            records.append(
                ExperimentRecord(
                    dataset=row["dataset"],
                    algorithm=row["algorithm"],
                    trace_name=row["trace_name"],
                    metrics=metrics,
                    breakdown=breakdown,
                    optimal_qoe=float(row["optimal_qoe"]),
                    n_qoe=float(row["n_qoe"]),
                )
            )
    if not records:
        raise ValueError(f"{path}: no experiment records found")
    return ResultSet(records, dataset=dataset)


def save_sweep_json(sweep: SweepResult, path: PathLike) -> None:
    """Persist a Figure 11/12 sweep (series keyed by algorithm)."""
    path = Path(path)
    payload = {
        "parameter_name": sweep.parameter_name,
        "parameter_values": list(sweep.parameter_values),
        "series": {name: list(values) for name, values in sweep.series.items()},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def load_sweep_json(path: PathLike) -> SweepResult:
    """Inverse of :func:`save_sweep_json`."""
    payload = json.loads(Path(path).read_text())
    for key in ("parameter_name", "parameter_values", "series"):
        if key not in payload:
            raise ValueError(f"{path}: missing {key!r}")
    return SweepResult(
        parameter_name=payload["parameter_name"],
        parameter_values=tuple(payload["parameter_values"]),
        series={k: tuple(v) for k, v in payload["series"].items()},
    )


def save_session_log_csv(session, path: PathLike) -> None:
    """Per-chunk player log — the paper's Section 6 logging functions.

    One row per chunk with everything the modified dash.js logged:
    bitrate, download time, measured throughput, buffer levels, stall and
    wait times.  Useful for inspecting a single session's dynamics.
    """
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "chunk_index",
                "level_index",
                "bitrate_kbps",
                "size_kilobits",
                "download_time_s",
                "throughput_kbps",
                "buffer_before_s",
                "buffer_after_s",
                "rebuffer_s",
                "waited_s",
                "wall_time_end_s",
            ]
        )
        for r in session.records:
            writer.writerow(
                [
                    r.chunk_index,
                    r.level_index,
                    r.bitrate_kbps,
                    r.size_kilobits,
                    r.download_time_s,
                    r.throughput_kbps,
                    r.buffer_before_s,
                    r.buffer_after_s,
                    r.rebuffer_s,
                    r.waited_s,
                    r.wall_time_end_s,
                ]
            )


# ---------------------------------------------------------------------------
# Persistent disk cache: decision tables and offline bounds
# ---------------------------------------------------------------------------
#
# Offline precomputation dominates repeated benchmark/figure runs: a
# 500-bin FastMPC table or a 1000-trace batch of fluid bounds takes far
# longer to build than to load.  Entries are content-addressed — the file
# name is the SHA-256 of the full configuration key's ``repr`` and the key
# itself is stored inside the entry, so a hash collision or stale format
# is detected on load and falls back to recomputing.  Writes go through a
# same-directory temp file + ``os.replace`` so concurrent processes (the
# experiment worker pool) never observe a torn entry.

CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_TABLE_SUBDIR = "tables"
_BOUND_SUBDIR = "bounds"


def cache_root(cache_dir: Optional[PathLike] = None) -> Optional[Path]:
    """Resolve the disk-cache root directory.

    Explicit ``cache_dir`` wins; otherwise the ``REPRO_CACHE_DIR``
    environment variable; otherwise ``None`` — caching disabled.
    """
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else None


def _entry_path(root: Path, subdir: str, key_repr: str, suffix: str) -> Path:
    digest = hashlib.sha256(key_repr.encode()).hexdigest()
    return root / subdir / f"{digest}{suffix}"


def _discard_corrupt(path: Path, error: Exception) -> None:
    """Warn about and drop a cache entry that failed to parse.

    Left in place, a corrupt entry would fail the same way on every
    later run while looking like a cache hit on disk.  The unlink is
    best-effort — a read-only cache still just misses.
    """
    logger.warning("discarding corrupt cache entry %s: %s", path, error)
    try:
        path.unlink(missing_ok=True)
    except OSError:
        pass


def _atomic_write(path: Path, payload: bytes) -> None:
    # Best-effort, like loads: an unwritable cache (read-only mount, a
    # file where the directory should be) must not abort the computation
    # whose result it was merely recording.
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
    except OSError:
        pass


def save_cached_table(
    key: tuple, table: DecisionTable, cache_dir: Optional[PathLike] = None
) -> Optional[Path]:
    """Persist a decision table under its configuration key.

    ``key`` is the tuple produced by ``repro.core.fastmpc._cache_key`` —
    plain floats/ints/strings, so its ``repr`` round-trips exactly.
    Returns the entry path, or ``None`` when caching is disabled.
    """
    root = cache_root(cache_dir)
    if root is None:
        return None
    key_repr = repr(key)
    key_bytes = key_repr.encode()
    path = _entry_path(root, _TABLE_SUBDIR, key_repr, ".table")
    _atomic_write(
        path, struct.pack("<I", len(key_bytes)) + key_bytes + table.to_bytes()
    )
    return path


def load_cached_table(
    key: tuple, cache_dir: Optional[PathLike] = None
) -> Optional[DecisionTable]:
    """Load a previously saved decision table, or ``None`` on any miss.

    Misses include: caching disabled, no entry, stored key mismatch
    (collision / stale format), or a corrupt blob — all safe, because the
    caller simply rebuilds.
    """
    root = cache_root(cache_dir)
    if root is None:
        return None
    key_repr = repr(key)
    path = _entry_path(root, _TABLE_SUBDIR, key_repr, ".table")
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    try:
        (key_len,) = struct.unpack_from("<I", blob, 0)
        if len(blob) < 4 + key_len:
            raise ValueError(
                f"truncated entry: {len(blob)} bytes, key claims {key_len}"
            )
        stored = blob[4 : 4 + key_len].decode()
        if stored != key_repr:
            # A different key hashed to this path (collision or stale
            # format): an honest miss, not corruption — leave it alone.
            return None
        return DecisionTable.from_bytes(blob[4 + key_len :])
    except (struct.error, ValueError, IndexError) as exc:
        _discard_corrupt(path, exc)
        return None


# ---------------------------------------------------------------------------
# Table publication: the read-only file worker processes mmap
# ---------------------------------------------------------------------------
#
# The cluster's scale-out story (docs/scaling.md): the supervisor writes
# the decision table to disk exactly once, and every worker maps the file
# read-only with DecisionTable.from_buffer — zero copies, one page-cache
# residency shared by all workers.  Unlike the content-addressed cache
# above, publication is *not* best-effort: a worker that cannot see the
# table must fail loudly, not silently degrade every decision.


def publish_table(table: DecisionTable, path: PathLike) -> Path:
    """Atomically write a decision table for read-only worker mapping.

    Same-directory temp file + ``os.replace``, so a worker that races the
    publication sees either the complete previous file or the complete
    new one, never a torn write.  Unlike the disk cache's writes, errors
    propagate — publication failing must not look like success.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_bytes(table.to_bytes())
    os.replace(tmp, path)
    return path


def map_published_table(
    path: PathLike, expect: Optional[DecisionTable] = None
) -> DecisionTable:
    """Map a published table file read-only, zero-copy.

    Returns a :class:`~repro.core.table.DecisionTable` whose lookups
    binary-search the mapped bytes in place; the mapping stays alive for
    the table's lifetime (the buffer view pins it).  With ``expect``,
    the mapped table is parity-checked against the in-memory table it
    was published from and a mismatch (torn/corrupt/wrong file) raises
    instead of serving wrong decisions.
    """
    import mmap

    path = Path(path)
    with path.open("rb") as fh:
        mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        table = DecisionTable.from_buffer(mapped)
    except (ValueError, IndexError, struct.error) as exc:
        mapped.close()
        raise ValueError(f"{path}: not a valid published table: {exc}") from None
    if expect is not None and not table.same_decisions(expect):
        raise ValueError(f"{path}: mapped table does not match the published one")
    return table


def _quality_key(quality) -> Optional[str]:
    """A stable fingerprint of a quality function, ``None`` if unkeyable.

    Named :class:`~repro.video.quality.QualityFunction` subclasses are
    keyed by class, name, and constructor state.  Anonymous callables
    (``name`` of ``"base"``/``"wrapped"``) cannot be fingerprinted, so
    bounds computed with them are never disk-cached.
    """
    if quality is None:
        return repr(("IdentityQuality", "identity", []))
    name = getattr(quality, "name", "base")
    if name in ("base", "wrapped"):
        return None
    state = sorted(getattr(quality, "__dict__", {}).items())
    return repr((type(quality).__name__, name, state))


def cached_fluid_upper_bound(
    trace: Trace,
    manifest: VideoManifest,
    weights: Optional[QoEWeights] = None,
    quality=None,
    buffer_capacity_s: float = 30.0,
    max_rebuffer_s: float = 256.0,
    startup_step_s: float = 2.0,
    cache_dir: Optional[PathLike] = None,
) -> float:
    """Disk-cached :func:`repro.core.offline.fluid_upper_bound`.

    The bound depends only on the trace content and a handful of scalars
    (the continuous relaxation never reads per-chunk sizes), so the key is
    the trace's ``(timestamps, bandwidths, duration)`` plus the manifest
    shape, weights, quality fingerprint, and solver parameters.  Falls
    back to a direct computation when caching is disabled or the quality
    function cannot be keyed.
    """
    root = cache_root(cache_dir)
    qkey = _quality_key(quality)

    def compute() -> float:
        return fluid_upper_bound(
            trace,
            manifest,
            weights=weights,
            quality=quality,
            buffer_capacity_s=buffer_capacity_s,
            max_rebuffer_s=max_rebuffer_s,
            startup_step_s=startup_step_s,
        )

    if root is None or qkey is None:
        return compute()
    w = weights if weights is not None else QoEWeights.balanced()
    key_repr = repr(
        (
            "fluid_upper_bound",
            trace.timestamps,
            trace.bandwidths_kbps,
            trace.duration_s,
            manifest.num_chunks,
            manifest.chunk_duration_s,
            manifest.ladder.max_kbps,
            (w.switching, w.rebuffering, w.startup),
            qkey,
            buffer_capacity_s,
            max_rebuffer_s,
            startup_step_s,
        )
    )
    path = _entry_path(root, _BOUND_SUBDIR, key_repr, ".json")
    try:
        text: Optional[str] = path.read_text()
    except OSError:
        text = None  # no entry (or unreadable): plain miss
    if text is not None:
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("bound entry is not a JSON object")
            if payload.get("key") == key_repr:
                return float(payload["value"])
            # Valid entry for a different key: miss; recompute overwrites.
        except (ValueError, TypeError, KeyError) as exc:
            _discard_corrupt(path, exc)
    value = compute()
    _atomic_write(
        path, json.dumps({"key": key_repr, "value": value}).encode()
    )
    return value


def clear_disk_cache(cache_dir: Optional[PathLike] = None) -> int:
    """Delete every cached table and bound; returns the entry count.

    Only known entry types under the cache root's ``tables/`` and
    ``bounds/`` subdirectories are touched.
    """
    root = cache_root(cache_dir)
    if root is None:
        return 0
    removed = 0
    for subdir, suffix in ((_TABLE_SUBDIR, ".table"), (_BOUND_SUBDIR, ".json")):
        directory = root / subdir
        if not directory.is_dir():
            continue
        for entry in directory.iterdir():
            if entry.suffix == suffix:
                entry.unlink()
                removed += 1
    return removed
