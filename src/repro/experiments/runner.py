"""Batch experiment runner: algorithms x traces -> scored sessions.

This is the glue of Section 7: it drives every (algorithm, trace) pair
through a backend (trace-driven simulator or byte-level emulator),
computes the offline-optimal bound once per trace, and collects the
normalized-QoE and per-session metrics every figure consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..abr.base import ABRAlgorithm, SessionConfig
from ..core.offline import normalized_qoe
from ..emulation.harness import NetworkProfile, emulate_session
from ..qoe import QoEBreakdown, QoEWeights
from ..sim.metrics import SessionMetrics
from ..sim.session import SessionResult, StartupPolicy, simulate_session
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from .cdf import median

__all__ = [
    "ExperimentRecord",
    "ResultSet",
    "bound_weights_for",
    "run_matrix",
    "BACKENDS",
]

BACKENDS = ("sim", "emulation")


@dataclass(frozen=True)
class ExperimentRecord:
    """One scored (algorithm, trace) session."""

    dataset: str
    algorithm: str
    trace_name: str
    metrics: SessionMetrics
    breakdown: QoEBreakdown
    optimal_qoe: float
    n_qoe: float

    @property
    def qoe(self) -> float:
        return self.breakdown.total


class ResultSet:
    """A collection of scored sessions with per-algorithm views."""

    def __init__(self, records: Sequence[ExperimentRecord], dataset: str = "") -> None:
        if not records:
            raise ValueError("a result set needs at least one record")
        self.records = list(records)
        self.dataset = dataset

    def algorithms(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.algorithm not in seen:
                seen.append(record.algorithm)
        return seen

    def for_algorithm(self, name: str) -> List[ExperimentRecord]:
        out = [r for r in self.records if r.algorithm == name]
        if not out:
            raise KeyError(f"no records for algorithm {name!r}")
        return out

    # ------------------------------------------------------------------
    # Extracting series (one value per session)
    # ------------------------------------------------------------------

    def n_qoe_values(self, algorithm: str) -> List[float]:
        return [r.n_qoe for r in self.for_algorithm(algorithm)]

    def qoe_values(self, algorithm: str) -> List[float]:
        return [r.qoe for r in self.for_algorithm(algorithm)]

    def metric_values(self, algorithm: str, field: str) -> List[float]:
        """Per-session values of a :class:`SessionMetrics` field."""
        return [
            float(getattr(r.metrics, field)) for r in self.for_algorithm(algorithm)
        ]

    def median_n_qoe(self, algorithm: str) -> float:
        return median(self.n_qoe_values(algorithm))

    def median_improvement(self, algorithm: str, baseline: str) -> float:
        """Relative median n-QoE improvement of ``algorithm`` over
        ``baseline`` — the paper's headline "15% / 10%" statistic."""
        base = self.median_n_qoe(baseline)
        if base == 0:
            raise ValueError(f"baseline {baseline!r} has zero median n-QoE")
        return (self.median_n_qoe(algorithm) - base) / abs(base)

    def merged_with(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self.records + other.records, dataset=self.dataset)


def bound_weights_for(
    config: SessionConfig, include_startup_in_qoe: bool
) -> QoEWeights:
    """Weights for the offline-optimal bound of a run.

    When sessions are scored without the startup term (the Figure 11d
    fixed-startup experiment), the bound they are normalised against must
    also pay nothing for startup — otherwise n-QoE compares incompatible
    objectives.  Shared by the serial and parallel runners.
    """
    if include_startup_in_qoe:
        return config.weights
    return QoEWeights(
        config.weights.switching,
        config.weights.rebuffering,
        0.0,
        label=config.weights.label,
    )


def _score_session(
    dataset: str,
    algorithm_name: str,
    session: SessionResult,
    optimal: float,
    include_startup: bool,
) -> ExperimentRecord:
    breakdown = session.qoe(include_startup=include_startup)
    return ExperimentRecord(
        dataset=dataset,
        algorithm=algorithm_name,
        trace_name=session.trace_name,
        metrics=session.metrics(),
        breakdown=breakdown,
        optimal_qoe=optimal,
        n_qoe=normalized_qoe(breakdown.total, optimal),
    )


def run_matrix(
    algorithms: Mapping[str, ABRAlgorithm],
    traces: Sequence[Trace],
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
    backend: str = "sim",
    network: Optional[NetworkProfile] = None,
    startup_policy: StartupPolicy = StartupPolicy.FIRST_CHUNK,
    fixed_startup_delay_s: float = 0.0,
    include_startup_in_qoe: bool = True,
    dataset: str = "",
    progress: Optional[Callable[[str, int, int], None]] = None,
    cache_dir: Optional[str] = None,
) -> ResultSet:
    """Run every algorithm over every trace and score the sessions.

    Parameters
    ----------
    algorithms:
        Name -> instance.  Instances are re-``prepare()``-d per session so
        one instance may serve many traces.
    backend:
        ``"sim"`` (chunk-level, Section 7.3) or ``"emulation"``
        (byte-level, Section 7.2).
    include_startup_in_qoe:
        Set False for the fixed-startup experiment (Figure 11d scores QoE
        "except the startup delay term").
    progress:
        Optional callback ``(algorithm, finished, total)`` for long runs.
    cache_dir:
        Optional disk-cache directory for the per-trace offline bounds
        (defaults to the ``REPRO_CACHE_DIR`` environment variable).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if not algorithms:
        raise ValueError("need at least one algorithm")
    if not traces:
        raise ValueError("need at least one trace")
    config = config if config is not None else SessionConfig()

    # Imported lazily: persistence imports this module at load time.
    from .persistence import cached_fluid_upper_bound

    bound_weights = bound_weights_for(config, include_startup_in_qoe)
    optimal_by_trace: Dict[int, float] = {}
    for i, trace in enumerate(traces):
        optimal_by_trace[i] = cached_fluid_upper_bound(
            trace,
            manifest,
            weights=bound_weights,
            quality=config.quality,
            buffer_capacity_s=config.buffer_capacity_s,
            cache_dir=cache_dir,
        )

    records: List[ExperimentRecord] = []
    for name, algorithm in algorithms.items():
        for i, trace in enumerate(traces):
            if backend == "sim":
                session = simulate_session(
                    algorithm,
                    trace,
                    manifest,
                    config,
                    startup_policy=startup_policy,
                    fixed_startup_delay_s=fixed_startup_delay_s,
                )
            else:
                session = emulate_session(
                    algorithm,
                    trace,
                    manifest,
                    config,
                    network=network,
                    startup_policy=startup_policy,
                    fixed_startup_delay_s=fixed_startup_delay_s,
                )
            records.append(
                _score_session(
                    dataset, name, session, optimal_by_trace[i], include_startup_in_qoe
                )
            )
            if progress is not None:
                progress(name, i + 1, len(traces))
    return ResultSet(records, dataset=dataset)
