"""Statistical support: bootstrap confidence intervals and paired tests.

The paper reports median improvements ("15% in FCC") without uncertainty;
at reproduction scale (tens of traces instead of 1000) uncertainty
matters, so the benches and reports can attach bootstrap confidence
intervals to medians and to paired median differences.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .cdf import median, percentile

__all__ = [
    "ConfidenceInterval",
    "bootstrap_median_ci",
    "paired_median_difference_ci",
    "sign_test_fraction",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def excludes_zero(self) -> bool:
        """True when the interval lies strictly on one side of zero —
        the quick significance read for an improvement claim."""
        return self.low > 0.0 or self.high < 0.0

    def describe(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}] @ {self.confidence:.0%}"
        )


def _bootstrap(
    values: Sequence[float],
    statistic,
    n_boot: int,
    seed: int,
) -> List[float]:
    rng = random.Random(f"bootstrap-{seed}")
    n = len(values)
    out = []
    for _ in range(n_boot):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        out.append(statistic(resample))
    return out


def bootstrap_median_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the median of a per-session metric."""
    if not values:
        raise ValueError("need at least one value")
    if not (0 < confidence < 1):
        raise ValueError("confidence must be in (0, 1)")
    if n_boot < 10:
        raise ValueError("n_boot too small to be meaningful")
    stats = _bootstrap(list(values), median, n_boot, seed)
    alpha = (1 - confidence) / 2
    return ConfidenceInterval(
        estimate=median(values),
        low=percentile(stats, 100 * alpha),
        high=percentile(stats, 100 * (1 - alpha)),
        confidence=confidence,
    )


def paired_median_difference_ci(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """CI for ``median(a_i - b_i)`` over *paired* sessions.

    Pairing by trace removes the (large) across-trace variance, which is
    how "algorithm A beats B" claims should be tested when both ran on
    the same traces.
    """
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    diffs = [x - y for x, y in zip(a, b)]
    return bootstrap_median_ci(diffs, confidence, n_boot, seed)


def sign_test_fraction(a: Sequence[float], b: Sequence[float]) -> float:
    """Fraction of paired sessions where ``a`` strictly beats ``b``."""
    if len(a) != len(b) or not a:
        raise ValueError("paired samples must be non-empty and equal length")
    wins = sum(1 for x, y in zip(a, b) if x > y)
    return wins / len(a)
