"""Experiment harness: runners, sweeps, per-figure reproduction, reports."""

from .cdf import cdf_at, ecdf, fraction_at_most, fraction_below, median, percentile
from .runner import BACKENDS, ExperimentRecord, ResultSet, run_matrix
from .figures import (
    DatasetCharacteristics,
    DetailSeries,
    OverheadSample,
    figure7,
    figure8,
    figure9_10,
    measure_overhead,
    prediction_profile,
    table1,
)
from .sensitivity import (
    SweepResult,
    bitrate_levels_sweep,
    buffer_size_sweep,
    discretization_sweep,
    horizon_sweep,
    prediction_error_sweep,
    qoe_preference_sweep,
    startup_time_sweep,
)
from .persistence import (
    load_result_set_csv,
    load_sweep_json,
    save_result_set_csv,
    save_session_log_csv,
    save_sweep_json,
)
from .stats import (
    ConfidenceInterval,
    bootstrap_median_ci,
    paired_median_difference_ci,
    sign_test_fraction,
)
from .svgplot import render_cdf_svg, render_lines_svg, save_svg
from .report import (
    render_detail_series,
    render_distribution_summary,
    render_figure7,
    render_result_set,
    render_table,
)

__all__ = [
    "cdf_at",
    "ecdf",
    "fraction_at_most",
    "fraction_below",
    "median",
    "percentile",
    "BACKENDS",
    "ExperimentRecord",
    "ResultSet",
    "run_matrix",
    "DatasetCharacteristics",
    "DetailSeries",
    "OverheadSample",
    "figure7",
    "figure8",
    "figure9_10",
    "measure_overhead",
    "prediction_profile",
    "table1",
    "SweepResult",
    "bitrate_levels_sweep",
    "buffer_size_sweep",
    "discretization_sweep",
    "horizon_sweep",
    "prediction_error_sweep",
    "qoe_preference_sweep",
    "startup_time_sweep",
    "load_result_set_csv",
    "load_sweep_json",
    "save_result_set_csv",
    "save_session_log_csv",
    "save_sweep_json",
    "ConfidenceInterval",
    "bootstrap_median_ci",
    "paired_median_difference_ci",
    "sign_test_fraction",
    "render_cdf_svg",
    "render_lines_svg",
    "save_svg",
    "render_detail_series",
    "render_distribution_summary",
    "render_figure7",
    "render_result_set",
    "render_table",
]
