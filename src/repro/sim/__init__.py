"""Chunk-level trace-driven simulator (the paper's Section 7.3 framework)."""

from .metrics import SessionMetrics
from .session import SessionResult, StartupPolicy, simulate_session
from .live import LiveConfig, LiveSessionResult, run_live_session

__all__ = [
    "SessionMetrics",
    "SessionResult",
    "StartupPolicy",
    "simulate_session",
    "LiveConfig",
    "LiveSessionResult",
    "run_live_session",
]
