"""Live-streaming sessions: chunks are published on a wall-clock schedule.

On-demand video hands the whole manifest to the player at ``t = 0``; a
live stream publishes chunk ``k`` only once the encoder has produced it.
That changes three things, each modelled here:

* **bounded lookahead** — the controller cannot plan over chunks that do
  not exist yet, so every decision carries ``available_chunks`` and MPC
  clips its horizon to the published prefix (Section 5's receding
  horizon, truncated at the live edge);
* **edge waits** — a player that drains its backlog must wait, idle, for
  the next chunk to be published.  The wait drains the playback buffer
  and can itself rebuffer; it is also exactly the kind of off time that
  poisons naive throughput predictors, so it is accounted into each
  chunk's ``idle_before_s`` for the gap-corrected ones;
* **latency in the objective** — chunk ``k``'s *fetch latency* is how
  far behind the live edge it was obtained
  (``download end - publish time``); QoE becomes the Eq. 5 total minus
  ``latency_weight`` times the mean latency excess over
  ``latency_target_s``.

The publish schedule is ``publish(k) = (k - backlog + 1) * interval``
for ``k >= backlog`` (the first ``backlog`` chunks pre-exist at ``t=0``
— the DVR window a joining viewer lands in), with ``interval`` equal to
the chunk duration by default: real-time encoding.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..abr.base import (
    ABRAlgorithm,
    DownloadResult,
    PlayerObservation,
    SessionConfig,
)
from ..obs.events import (
    ChunkDecision,
    ChunkDownload,
    PredictionSpan,
    Rebuffer,
    SessionSummary,
)
from ..obs.tracer import Tracer
from ..prediction.base import OBSERVATION_FLOOR_KBPS, ThroughputObservation
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from .session import SessionResult, _bind_trace_aware, _set_wall_time

__all__ = ["LiveConfig", "LiveSessionResult", "run_live_session"]

_INFINITY = math.inf


@dataclass(frozen=True)
class LiveConfig:
    """Knobs of the live scenario (see the module docstring).

    ``interval_s = None`` publishes at the chunk duration — real-time
    encoding, the live default.
    """

    interval_s: Optional[float] = None
    backlog_chunks: int = 3
    latency_target_s: float = 15.0
    latency_weight: float = 100.0

    def __post_init__(self) -> None:
        if self.interval_s is not None and self.interval_s <= 0:
            raise ValueError("publish interval must be positive")
        if self.backlog_chunks < 1:
            raise ValueError("a live session needs at least one chunk at t=0")
        if self.latency_target_s < 0:
            raise ValueError("latency target must be >= 0")
        if self.latency_weight < 0:
            raise ValueError("latency weight must be >= 0")

    def publish_interval_s(self, manifest: VideoManifest) -> float:
        if self.interval_s is not None:
            return self.interval_s
        return manifest.chunk_duration_s

    def publish_time_s(self, chunk_index: int, interval_s: float) -> float:
        """Wall time chunk ``chunk_index`` becomes downloadable."""
        if chunk_index < self.backlog_chunks:
            return 0.0
        return (chunk_index - self.backlog_chunks + 1) * interval_s


@dataclass(frozen=True)
class LiveSessionResult:
    """A live session: the plain session log plus the live accounting."""

    session: SessionResult
    live: LiveConfig
    latencies_s: Tuple[float, ...]  # fetch latency per chunk, in order
    edge_wait_s: float  # total time spent waiting for unpublished chunks
    edge_rebuffer_s: float  # rebuffer incurred during those waits

    def mean_latency_s(self) -> float:
        if not self.latencies_s:
            return 0.0
        total = 0.0
        for latency in self.latencies_s:
            total += latency
        return total / len(self.latencies_s)

    def latency_penalty(self) -> float:
        """``latency_weight * mean(max(0, latency - target))``."""
        if not self.latencies_s:
            return 0.0
        excess = 0.0
        for latency in self.latencies_s:
            over = latency - self.live.latency_target_s
            if over > 0.0:
                excess += over
        return self.live.latency_weight * (excess / len(self.latencies_s))

    def qoe_total(self, weights=None) -> float:
        """Eq. 5 total minus the latency penalty — the live objective."""
        return self.session.qoe(weights).total - self.latency_penalty()


def run_live_session(
    algorithm: ABRAlgorithm,
    trace: Trace,
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
    live: Optional[LiveConfig] = None,
    tracer: Optional[Tracer] = None,
    session_id: str = "",
    link_faults: Optional[Iterable] = None,
    fault_seed: int = 0,
) -> LiveSessionResult:
    """Play one live session; the dynamics mirror ``simulate_session``.

    Eqs. (1)-(4) apply unchanged to each download; on top of them the
    publish schedule gates when a chunk may be requested, and each
    decision sees the published-prefix length via
    ``PlayerObservation.available_chunks``.  Playback uses the
    first-chunk startup policy (a live viewer joins and plays).
    """
    config = config if config is not None else SessionConfig()
    live = live if live is not None else LiveConfig()
    if link_faults:
        from ..faults.simlink import SimLinkFaults

        injector = SimLinkFaults(link_faults, fault_seed)
    else:
        injector = None
    tracing = tracer is not None and tracer.enabled
    if tracing and not session_id:
        session_id = f"live:{algorithm.name}:{trace.name}"
    if tracing and not tracer.session_id:
        tracer.session_id = session_id
    if tracer is not None:
        algorithm.tracer = tracer
    algorithm.prepare(manifest, config)
    _bind_trace_aware(algorithm, trace, manifest)

    interval = live.publish_interval_s(manifest)
    L = manifest.chunk_duration_s
    bmax = config.buffer_capacity_s
    t = 0.0
    buffer_s = 0.0
    playback_start_s = _INFINITY
    total_rebuffer = 0.0
    edge_wait = 0.0
    edge_rebuffer = 0.0
    prev_level: Optional[int] = None
    records: List[DownloadResult] = []
    latencies: List[float] = []
    last_transfer_end = 0.0
    published = 0  # chunks 0 .. published-1 exist at wall time t

    for k in range(manifest.num_chunks):
        publish = live.publish_time_s(k, interval)
        if t < publish:
            # Wait at the live edge.  The buffer keeps draining once
            # playback has begun; running dry during the wait is a
            # rebuffer charged to the publish schedule, not the network.
            wait = publish - t
            edge_wait += wait
            if playback_start_s != _INFINITY and publish > playback_start_s:
                drain = publish - max(t, playback_start_s)
                stall = max(drain - buffer_s, 0.0)
                buffer_s = max(buffer_s - drain, 0.0)
                total_rebuffer += stall
                edge_rebuffer += stall
            t = publish
        # Advance the published prefix by direct comparison against the
        # schedule (no division — float-exact at publish boundaries).
        while (
            published < manifest.num_chunks
            and live.publish_time_s(published, interval) <= t
        ):
            published += 1

        _set_wall_time(algorithm, t)
        idle_before = t - last_transfer_end
        observation = PlayerObservation(
            chunk_index=k,
            buffer_level_s=buffer_s,
            prev_level_index=prev_level,
            wall_time_s=t,
            playback_started=t >= playback_start_s,
            available_chunks=published,
        )
        if tracing:
            _decide_t0 = time.perf_counter()
        level = algorithm.select_bitrate(observation)
        if not 0 <= level < len(manifest.ladder):
            raise ValueError(
                f"{algorithm.name} returned invalid level {level} for chunk {k}"
            )
        if tracing:
            tracer.emit(
                ChunkDecision(
                    session_id=session_id,
                    t_mono=tracer.now(),
                    chunk_index=k,
                    buffer_s=observation.buffer_level_s,
                    prev_level=prev_level,
                    level=level,
                    bitrate_kbps=manifest.ladder[level],
                    wall_time_s=observation.wall_time_s,
                    decide_wall_s=time.perf_counter() - _decide_t0,
                )
            )
            _pending_predictions = [
                (p.name, p.predict(1)[0]) for p in algorithm.predictors()
            ]
        size = manifest.chunk_size_kilobits(k, level)
        overhead = injector.overhead_s(t) if injector is not None else 0.0
        transfer_time, trace_stall = trace.download_time_and_stall(
            t + overhead, size
        )
        download_time = overhead + transfer_time
        stalled = overhead + trace_stall
        t_end = t + download_time

        drain = max(0.0, t_end - max(playback_start_s, t))
        rebuffer = max(drain - buffer_s, 0.0)
        buffer_s = max(buffer_s - drain, 0.0)
        total_rebuffer += rebuffer
        t = t_end
        last_transfer_end = t
        buffer_s += L
        latencies.append(t_end - publish)

        if playback_start_s == _INFINITY:
            extra = algorithm.select_startup_wait(
                PlayerObservation(
                    chunk_index=k,
                    buffer_level_s=buffer_s,
                    prev_level_index=level,
                    wall_time_s=t,
                    playback_started=False,
                    available_chunks=max(published, k + 1),
                )
            )
            if extra < 0:
                raise ValueError("startup wait must be >= 0")
            t += extra
            playback_start_s = t

        waited = 0.0
        threshold = config.pacing_threshold_s
        if buffer_s > threshold:
            if t >= playback_start_s or buffer_s > bmax:
                drain_start = max(t, playback_start_s)
                waited = (drain_start - t) + (buffer_s - threshold)
                t = drain_start + (buffer_s - threshold)
                buffer_s = threshold

        result = DownloadResult(
            chunk_index=k,
            level_index=level,
            bitrate_kbps=manifest.ladder[level],
            size_kilobits=size,
            download_time_s=download_time,
            throughput_kbps=max(
                size / download_time if download_time > 0 else _INFINITY,
                OBSERVATION_FLOOR_KBPS,
            ),
            rebuffer_s=rebuffer,
            buffer_after_s=buffer_s,
            wall_time_end_s=t,
            waited_s=waited,
            buffer_before_s=observation.buffer_level_s,
            stalled_s=stalled,
            idle_before_s=idle_before,
        )
        records.append(result)
        if tracing:
            tracer.emit(
                ChunkDownload(
                    session_id=session_id,
                    t_mono=tracer.now(),
                    chunk_index=k,
                    level=level,
                    bitrate_kbps=result.bitrate_kbps,
                    size_kilobits=size,
                    download_time_s=download_time,
                    throughput_kbps=result.throughput_kbps,
                    rebuffer_s=rebuffer,
                    buffer_before_s=result.buffer_before_s,
                    buffer_after_s=buffer_s,
                    wall_time_end_s=t,
                    waited_s=waited,
                )
            )
            if rebuffer > 0:
                tracer.emit(
                    Rebuffer(
                        session_id=session_id,
                        t_mono=tracer.now(),
                        chunk_index=k,
                        duration_s=rebuffer,
                        wall_time_s=t,
                    )
                )
            if _pending_predictions:
                active = ThroughputObservation(
                    result.throughput_kbps,
                    download_time,
                    idle_s=idle_before,
                    stall_s=stalled,
                ).active_kbps
                for predictor_name, predicted in _pending_predictions:
                    tracer.emit(
                        PredictionSpan(
                            session_id=session_id,
                            t_mono=tracer.now(),
                            chunk_index=k,
                            predictor=predictor_name,
                            predicted_kbps=predicted,
                            actual_kbps=result.throughput_kbps,
                            active_kbps=active,
                            error=(predicted - active) / active,
                            duration_s=download_time,
                            idle_s=idle_before,
                            stall_s=stalled,
                        )
                    )
        algorithm.on_download_complete(result)
        prev_level = level

    startup_delay = playback_start_s if playback_start_s != _INFINITY else t
    session = SessionResult(
        algorithm_name=algorithm.name,
        trace_name=trace.name,
        records=tuple(records),
        startup_delay_s=startup_delay,
        total_rebuffer_s=total_rebuffer,
        total_wall_time_s=t,
        config=config,
    )
    live_result = LiveSessionResult(
        session=session,
        live=live,
        latencies_s=tuple(latencies),
        edge_wait_s=edge_wait,
        edge_rebuffer_s=edge_rebuffer,
    )
    if tracing:
        tracer.emit(
            SessionSummary(
                session_id=session_id,
                t_mono=tracer.now(),
                algorithm=algorithm.name,
                trace_name=trace.name,
                num_chunks=len(records),
                startup_delay_s=startup_delay,
                total_rebuffer_s=total_rebuffer,
                total_wall_time_s=t,
                qoe_total=session.qoe().total,
                weight_switching=config.weights.switching,
                weight_rebuffering=config.weights.rebuffering,
                weight_startup=config.weights.startup,
            )
        )
    return live_result
