"""Per-session quality metrics — the quantities plotted in Figures 9/10.

The paper's per-session detail views report, per algorithm and trace:
average bitrate (kbps), average bitrate change per chunk (kbps/chunk),
and total rebuffer time (s).  :class:`SessionMetrics` extracts these plus
auxiliary diagnostics from a finished session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import SessionResult

__all__ = ["SessionMetrics"]


@dataclass(frozen=True)
class SessionMetrics:
    """Summary statistics of one playback session."""

    algorithm_name: str
    trace_name: str
    num_chunks: int
    average_bitrate_kbps: float
    average_bitrate_change_kbps: float  # per chunk boundary, Figures 9/10
    num_switches: int
    total_rebuffer_s: float
    num_rebuffer_events: int
    startup_delay_s: float
    total_wall_time_s: float
    average_throughput_kbps: float

    @classmethod
    def from_session(cls, session: "SessionResult") -> "SessionMetrics":
        bitrates = session.bitrates_kbps
        k = len(bitrates)
        if k == 0:
            raise ValueError("session has no chunks")
        changes = [abs(b - a) for a, b in zip(bitrates, bitrates[1:])]
        switches = sum(1 for c in changes if c > 0)
        rebuffer_events = sum(1 for r in session.records if r.rebuffer_s > 1e-9)
        throughputs = [r.throughput_kbps for r in session.records]
        return cls(
            algorithm_name=session.algorithm_name,
            trace_name=session.trace_name,
            num_chunks=k,
            average_bitrate_kbps=sum(bitrates) / k,
            average_bitrate_change_kbps=(sum(changes) / (k - 1)) if k > 1 else 0.0,
            num_switches=switches,
            total_rebuffer_s=session.total_rebuffer_s,
            num_rebuffer_events=rebuffer_events,
            startup_delay_s=session.startup_delay_s,
            total_wall_time_s=session.total_wall_time_s,
            average_throughput_kbps=sum(throughputs) / k,
        )

    def describe(self) -> str:
        """One human-readable summary line."""
        return (
            f"{self.algorithm_name:>14} | avg bitrate {self.average_bitrate_kbps:7.1f} kbps"
            f" | avg change {self.average_bitrate_change_kbps:6.1f} kbps/chunk"
            f" | rebuffer {self.total_rebuffer_s:6.2f} s ({self.num_rebuffer_events} events)"
            f" | startup {self.startup_delay_s:5.2f} s"
        )
