"""The chunk-level trace-driven simulator (Section 7.3's framework).

*"The simulation takes as input a throughput trace and models the video
download/playback process and the buffer dynamics.  At time t_k when the
bitrate of chunk k is needed, the simulation calls the bitrate controller
embedded with different algorithms to get R_k."*

The engine implements Eqs. (1)–(4) exactly:

* download time of chunk ``k`` is obtained by inverting the trace
  integral (Eq. 1/2) — no per-chunk constant-throughput approximation;
* the buffer drains in real time while downloading, gains ``L`` per
  completed chunk, and rebuffering accrues whenever a download outlasts
  the buffer (Eq. 3);
* a full buffer forces the Eq. (4) pause before the next request;
* playback start is governed by a :class:`StartupPolicy` — immediately
  after the first chunk (real players; the default), at a fixed delay
  (the Figure 11d experiment), or extended by the algorithm's own
  ``f_stmpc`` startup decision.

Every decision flows through the :class:`~repro.abr.base.ABRAlgorithm`
interface, so the simulator runs the paper's algorithms and any
user-supplied one interchangeably.
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..abr.base import (
    ABRAlgorithm,
    DownloadResult,
    PlayerObservation,
    SessionConfig,
)
from ..core.qoe import QoEBreakdown, compute_qoe
from ..obs.events import ChunkDecision, ChunkDownload, Rebuffer, SessionSummary
from ..obs.tracer import Tracer
from ..prediction.base import OBSERVATION_FLOOR_KBPS, TraceAware
from ..traces.trace import Trace
from ..video.manifest import VideoManifest
from .metrics import SessionMetrics

__all__ = ["StartupPolicy", "SessionResult", "simulate_session"]

_INFINITY = math.inf


class StartupPolicy(enum.Enum):
    """When playback begins relative to downloading."""

    FIRST_CHUNK = "first-chunk"  # play as soon as chunk 1 arrives (+ algo wait)
    FIXED = "fixed"  # play at a fixed wall-clock delay (Figure 11d)


@dataclass(frozen=True)
class SessionResult:
    """Everything observed during one simulated playback session."""

    algorithm_name: str
    trace_name: str
    records: tuple  # DownloadResult per chunk, in order
    startup_delay_s: float
    total_rebuffer_s: float
    total_wall_time_s: float
    config: SessionConfig

    @property
    def bitrates_kbps(self) -> List[float]:
        return [r.bitrate_kbps for r in self.records]

    @property
    def level_indices(self) -> List[int]:
        return [r.level_index for r in self.records]

    def qoe(self, weights=None, include_startup: bool = True) -> QoEBreakdown:
        """Score the session under Eq. 5 (optionally re-weighted)."""
        breakdown = compute_qoe(
            self.bitrates_kbps,
            self.total_rebuffer_s,
            self.startup_delay_s,
            weights if weights is not None else self.config.weights,
            self.config.quality,
        )
        return breakdown if include_startup else breakdown.without_startup()

    def metrics(self) -> SessionMetrics:
        return SessionMetrics.from_session(self)


def _bind_trace_aware(algorithm: ABRAlgorithm, trace: Trace, manifest: VideoManifest) -> None:
    for predictor in algorithm.predictors():
        if isinstance(predictor, TraceAware):
            predictor.bind_trace(trace, manifest.chunk_duration_s)


def _set_wall_time(algorithm: ABRAlgorithm, t: float) -> None:
    for predictor in algorithm.predictors():
        if isinstance(predictor, TraceAware):
            predictor.set_wall_time(t)


def simulate_session(
    algorithm: ABRAlgorithm,
    trace: Trace,
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
    startup_policy: StartupPolicy = StartupPolicy.FIRST_CHUNK,
    fixed_startup_delay_s: float = 0.0,
    tracer: Optional[Tracer] = None,
    session_id: str = "",
) -> SessionResult:
    """Play the whole video once and return the session log.

    Parameters
    ----------
    algorithm:
        Any :class:`~repro.abr.base.ABRAlgorithm`; it is ``prepare()``-d
        here, so instances may be reused across sessions.
    startup_policy / fixed_startup_delay_s:
        ``FIRST_CHUNK`` starts playback when the first chunk arrives plus
        the algorithm's optional extra wait; ``FIXED`` starts at the given
        wall-clock delay exactly (Section 7.3's startup experiment).
    tracer / session_id:
        When a :class:`repro.obs.Tracer` is given, the session emits the
        full per-chunk event timeline (decision, download, rebuffer) plus
        a closing summary, and attaches itself to the algorithm so solver
        and table profiling hooks fire too.  ``session_id`` defaults to
        ``"<algorithm>:<trace>"``.
    """
    config = config if config is not None else SessionConfig()
    if startup_policy is StartupPolicy.FIXED and fixed_startup_delay_s < 0:
        raise ValueError("fixed startup delay must be >= 0")
    tracing = tracer is not None and tracer.enabled
    if tracing and not session_id:
        session_id = f"{algorithm.name}:{trace.name}"
    if tracing and not tracer.session_id:
        # Attribute solver/table profiling events (which are emitted with
        # an empty session id) to this session.  Reuse a fresh tracer per
        # session, or pre-set ``tracer.session_id``, when that matters.
        tracer.session_id = session_id
    if tracer is not None:
        algorithm.tracer = tracer
    algorithm.prepare(manifest, config)
    _bind_trace_aware(algorithm, trace, manifest)

    L = manifest.chunk_duration_s
    bmax = config.buffer_capacity_s
    t = 0.0
    buffer_s = 0.0
    playback_start_s = (
        fixed_startup_delay_s if startup_policy is StartupPolicy.FIXED else _INFINITY
    )
    total_rebuffer = 0.0
    prev_level: Optional[int] = None
    records: List[DownloadResult] = []

    for k in range(manifest.num_chunks):
        _set_wall_time(algorithm, t)
        observation = PlayerObservation(
            chunk_index=k,
            buffer_level_s=buffer_s,
            prev_level_index=prev_level,
            wall_time_s=t,
            playback_started=t >= playback_start_s,
        )
        if tracing:
            _decide_t0 = time.perf_counter()
        level = algorithm.select_bitrate(observation)
        if not 0 <= level < len(manifest.ladder):
            raise ValueError(
                f"{algorithm.name} returned invalid level {level} for chunk {k}"
            )
        if tracing:
            tracer.emit(
                ChunkDecision(
                    session_id=session_id,
                    t_mono=tracer.now(),
                    chunk_index=k,
                    buffer_s=observation.buffer_level_s,
                    prev_level=prev_level,
                    level=level,
                    bitrate_kbps=manifest.ladder[level],
                    wall_time_s=observation.wall_time_s,
                    decide_wall_s=time.perf_counter() - _decide_t0,
                )
            )
        size = manifest.chunk_size_kilobits(k, level)
        download_time = trace.time_to_download(t, size)
        t_end = t + download_time

        # Real-time drain over the portion of the download after playback
        # has started (Eq. 3, generalised to mid-download playback start).
        drain = max(0.0, t_end - max(playback_start_s, t))
        rebuffer = max(drain - buffer_s, 0.0)
        buffer_s = max(buffer_s - drain, 0.0)
        total_rebuffer += rebuffer
        t = t_end
        buffer_s += L

        if playback_start_s == _INFINITY:
            # FIRST_CHUNK policy: playback begins now, plus any extra wait
            # the algorithm requests (MPC's f_stmpc startup decision).
            extra = algorithm.select_startup_wait(
                PlayerObservation(
                    chunk_index=k,
                    buffer_level_s=buffer_s,
                    prev_level_index=level,
                    wall_time_s=t,
                    playback_started=False,
                )
            )
            if extra < 0:
                raise ValueError("startup wait must be >= 0")
            t += extra
            playback_start_s = t

        waited = 0.0
        if buffer_s > bmax and playback_start_s == _INFINITY:
            # FIRST_CHUNK sessions never overflow before playback, but
            # a misbehaving startup wait could; begin playback now.
            playback_start_s = t
        # Eq. (4), generalised by request pacing: pause until the buffer
        # drains to the pacing threshold (Bmax by default).  Under a FIXED
        # startup policy the buffer only drains once playback begins, so
        # the wait spans until then too.  Pre-playback, pacing below Bmax
        # does not apply (players build their pre-roll at full speed).
        threshold = config.pacing_threshold_s
        if buffer_s > threshold and playback_start_s != _INFINITY:
            if t >= playback_start_s or buffer_s > bmax:
                drain_start = max(t, playback_start_s)
                waited = (drain_start - t) + (buffer_s - threshold)
                t = drain_start + (buffer_s - threshold)
                buffer_s = threshold

        result = DownloadResult(
            chunk_index=k,
            level_index=level,
            bitrate_kbps=manifest.ladder[level],
            size_kilobits=size,
            download_time_s=download_time,
            # Floored: a blackout chunk (download_time = inf) divides to
            # exactly 0.0, which the constructor rejects; sub-floor
            # trickles clamp the same way the predictors already do.
            throughput_kbps=max(
                size / download_time if download_time > 0 else _INFINITY,
                OBSERVATION_FLOOR_KBPS,
            ),
            rebuffer_s=rebuffer,
            buffer_after_s=buffer_s,
            wall_time_end_s=t,
            waited_s=waited,
            buffer_before_s=observation.buffer_level_s,
        )
        records.append(result)
        if tracing:
            tracer.emit(
                ChunkDownload(
                    session_id=session_id,
                    t_mono=tracer.now(),
                    chunk_index=k,
                    level=level,
                    bitrate_kbps=result.bitrate_kbps,
                    size_kilobits=size,
                    download_time_s=download_time,
                    throughput_kbps=result.throughput_kbps,
                    rebuffer_s=rebuffer,
                    buffer_before_s=result.buffer_before_s,
                    buffer_after_s=buffer_s,
                    wall_time_end_s=t,
                    waited_s=waited,
                )
            )
            if rebuffer > 0:
                tracer.emit(
                    Rebuffer(
                        session_id=session_id,
                        t_mono=tracer.now(),
                        chunk_index=k,
                        duration_s=rebuffer,
                        wall_time_s=t,
                    )
                )
        algorithm.on_download_complete(result)
        prev_level = level

    startup_delay = playback_start_s if playback_start_s != _INFINITY else t
    session = SessionResult(
        algorithm_name=algorithm.name,
        trace_name=trace.name,
        records=tuple(records),
        startup_delay_s=startup_delay,
        total_rebuffer_s=total_rebuffer,
        total_wall_time_s=t,
        config=config,
    )
    if tracing:
        tracer.emit(
            SessionSummary(
                session_id=session_id,
                t_mono=tracer.now(),
                algorithm=algorithm.name,
                trace_name=trace.name,
                num_chunks=len(records),
                startup_delay_s=startup_delay,
                total_rebuffer_s=total_rebuffer,
                total_wall_time_s=t,
                qoe_total=session.qoe().total,
                weight_switching=config.weights.switching,
                weight_rebuffering=config.weights.rebuffering,
                weight_startup=config.weights.startup,
            )
        )
    return session
