"""Seeded scenario sampling — the fleet's population definition.

A *scenario* is one session's full parameterisation: which controller,
which dataset and trace, which QoE preset, which bitrate ladder.  The
sampler draws scenarios from a :class:`ScenarioSpace` with a plain
``random.Random(seed)`` making a **fixed number of draws per scenario**,
which gives two properties the determinism tests pin down:

* the same seed always yields the identical scenario stream, on any
  platform (no hash randomisation, no NumPy RNG dependency);
* the stream has the *prefix property* — sampling ``n`` scenarios yields
  the first ``n`` of any longer sample with the same seed, so growing a
  fleet never reshuffles the sessions already run.

Trace pools come from :func:`repro.traces.datasets.standard_datasets`
(seeded) and are memoized per process, so pool construction is paid once
per worker, not once per shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
import random
from typing import Dict, List, Optional, Tuple

from ..abr.base import SessionConfig
from ..core.fastmpc import FastMPCConfig
from ..qoe import QoEWeights
from ..traces.datasets import DATASET_NAMES, standard_datasets
from ..traces.trace import Trace
from ..video.manifest import BitrateLadder, VideoManifest
from ..video.presets import (
    ENVIVIO_CHUNK_SECONDS,
    ENVIVIO_LADDER_KBPS,
    ENVIVIO_NUM_CHUNKS,
)
from .controllers import SUPPORTED_CONTROLLERS

__all__ = [
    "LADDER_NAMES",
    "PRESET_NAMES",
    "Scenario",
    "ScenarioSpace",
    "ladder_by_name",
    "manifest_for",
    "sample_scenarios",
    "session_config_for",
    "trace_pools",
]

#: The QoE preference profiles of Figure 11b.
PRESET_NAMES = ("balanced", "avoid-instability", "avoid-rebuffering")

#: Named bitrate ladders the sampler can draw; "envivio" is the paper's.
_LADDERS = {
    "envivio": BitrateLadder(ENVIVIO_LADDER_KBPS),
    "uniform-6": BitrateLadder.uniform(200.0, 4000.0, 6),
    "geometric-8": BitrateLadder.geometric(100.0, 4300.0, 8),
}
LADDER_NAMES = tuple(sorted(_LADDERS))


def ladder_by_name(name: str) -> BitrateLadder:
    try:
        return _LADDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown ladder {name!r}; expected one of {LADDER_NAMES}"
        ) from None


@dataclass(frozen=True)
class ScenarioSpace:
    """The axes the fleet samples over (all fields picklable primitives,
    so a space travels to pool workers as-is)."""

    controllers: Tuple[str, ...] = SUPPORTED_CONTROLLERS
    datasets: Tuple[str, ...] = DATASET_NAMES
    presets: Tuple[str, ...] = PRESET_NAMES
    ladders: Tuple[str, ...] = ("envivio",)
    num_chunks: int = ENVIVIO_NUM_CHUNKS
    traces_per_dataset: int = 100
    trace_duration_s: float = 320.0
    trace_seed: int = 0
    #: Optional FastMPC table discretization override (smaller tables for
    #: smoke tests and the pure-Python fallback).
    table_config: Optional[FastMPCConfig] = None

    def __post_init__(self) -> None:
        if not self.controllers:
            raise ValueError("scenario space needs at least one controller")
        for name in self.controllers:
            if name not in SUPPORTED_CONTROLLERS:
                raise ValueError(
                    f"unsupported fleet controller {name!r}; expected a subset "
                    f"of {SUPPORTED_CONTROLLERS}"
                )
        if not self.datasets:
            raise ValueError("scenario space needs at least one dataset")
        for name in self.datasets:
            if name not in DATASET_NAMES:
                raise ValueError(
                    f"unknown dataset {name!r}; expected a subset of "
                    f"{DATASET_NAMES}"
                )
        for name in self.presets:
            QoEWeights.preset(name)  # raises on unknown
        if not self.presets:
            raise ValueError("scenario space needs at least one QoE preset")
        for name in self.ladders:
            ladder_by_name(name)  # raises on unknown
        if not self.ladders:
            raise ValueError("scenario space needs at least one ladder")
        if self.num_chunks < 1:
            raise ValueError("num_chunks must be >= 1")
        if self.traces_per_dataset < 1:
            raise ValueError("traces_per_dataset must be >= 1")
        if self.trace_duration_s <= 0:
            raise ValueError("trace duration must be positive")


@dataclass(frozen=True)
class Scenario:
    """One sampled session parameterisation."""

    index: int
    controller: str
    dataset: str
    trace_index: int
    preset: str
    ladder: str

    @property
    def arm_key(self) -> str:
        """The aggregation arm this session belongs to."""
        return f"{self.controller}|{self.dataset}|{self.preset}|{self.ladder}"


def sample_scenarios(space: ScenarioSpace, n: int, seed: int) -> List[Scenario]:
    """Draw ``n`` scenarios; deterministic and prefix-stable in ``seed``."""
    if n < 0:
        raise ValueError("cannot sample a negative number of scenarios")
    rng = random.Random(seed)
    controllers = space.controllers
    datasets = space.datasets
    presets = space.presets
    ladders = space.ladders
    out: List[Scenario] = []
    for index in range(n):
        # Exactly five draws per scenario, always, so any prefix of the
        # stream is independent of the total sample size.
        controller = controllers[rng.randrange(len(controllers))]
        dataset = datasets[rng.randrange(len(datasets))]
        trace_index = rng.randrange(space.traces_per_dataset)
        preset = presets[rng.randrange(len(presets))]
        ladder = ladders[rng.randrange(len(ladders))]
        out.append(
            Scenario(
                index=index,
                controller=controller,
                dataset=dataset,
                trace_index=trace_index,
                preset=preset,
                ladder=ladder,
            )
        )
    return out


@lru_cache(maxsize=8)
def _pools_cached(
    traces_per_dataset: int, duration_s: float, seed: int
) -> Dict[str, List[Trace]]:
    return standard_datasets(
        traces_per_dataset=traces_per_dataset,
        duration_s=duration_s,
        seed=seed,
    )


def trace_pools(space: ScenarioSpace) -> Dict[str, List[Trace]]:
    """The per-dataset trace lists for a space (memoized per process)."""
    return _pools_cached(
        space.traces_per_dataset, space.trace_duration_s, space.trace_seed
    )


@lru_cache(maxsize=32)
def manifest_for(ladder_name: str, num_chunks: int) -> VideoManifest:
    """The CBR manifest for a named ladder (memoized per process)."""
    return VideoManifest.cbr(
        ENVIVIO_CHUNK_SECONDS,
        ladder_by_name(ladder_name),
        num_chunks,
        title=f"fleet-{ladder_name}",
    )


def session_config_for(preset: str) -> SessionConfig:
    """The player configuration for a QoE preset."""
    return SessionConfig(weights=QoEWeights.preset(preset))
