"""The batch session stepper — Eq. 1–4 over an array of sessions.

One :func:`run_batch` call advances N sessions through a whole video in
lockstep: struct-of-arrays state (wall time, buffer, accumulated
rebuffer, previous level per session) and one vectorized decision +
dynamics step per chunk.  The correctness bar is *exact parity*: for
every session the level sequence, per-chunk rebuffer/buffer trajectory,
download times, startup delay, and QoE breakdown are bit-identical to
running :func:`repro.sim.session.simulate_session` on that session alone
(same floats, same tie-breaks).

What makes exactness possible (and where the traps were):

* All per-session dynamics are elementwise float64 arithmetic replicated
  in the scalar simulator's operation order — elementwise NumPy
  add/sub/mul/div/maximum are IEEE-754 identical to the Python-float
  expression, so ``drain``/``rebuffer``/pacing come out bit-equal.
* Reductions are **not** IEEE-order-stable in NumPy (pairwise
  summation), so none are used where the scalar code sums sequentially:
  QoE quality/switching totals and the rebuffer total accumulate chunk
  by chunk with elementwise adds, in the simulator's own order.
* Download times invert the trace integral with a masked lockstep
  re-implementation of :meth:`Trace.time_to_download` — the same
  segment walk, the same ``_EPS`` completion test, the same
  floor-division repetition skip — never a closed-form inversion, whose
  rounding would diverge.
* Segment location is comparison-only (a per-session hint index advanced
  while ``t >= times[idx+1]``, exactly ``bisect_right``'s recurrence),
  not arithmetic search, so it cannot disagree with the scalar walk.
* Under the FIRST_CHUNK startup policy every supported controller's
  ``select_startup_wait`` is the base-class 0.0, and playback always
  starts at the first chunk's completion — which pins
  ``max(playback_start, t) == t`` for every later chunk and lets the
  pacing wait collapse to ``buffer - threshold`` exactly as the scalar
  expressions do.

Without NumPy (or with ``engine="scalar"``) each session runs through
the reference simulator itself, which is parity-exact by construction —
the fallback contract of :mod:`repro.core.npcompat`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..abr.base import SessionConfig
from ..core.fastmpc import FastMPCConfig
from ..core.npcompat import HAVE_NUMPY, np
from ..traces.trace import Trace, _EPS
from ..video.manifest import VideoManifest
from .controllers import (
    SUPPORTED_CONTROLLERS,
    make_batch_controller,
    make_scalar_algorithm,
)

__all__ = ["TraceBank", "BatchResult", "run_batch"]

_ENGINES = ("auto", "vector", "scalar")


@dataclass
class BatchResult:
    """Struct-of-arrays log of one batch: row i is session i.

    The 2-D fields are ``(num_sessions, num_chunks)``; the 1-D fields
    one value per session.  Arrays are NumPy under the vector engine and
    plain nested lists under the scalar engine — both index the same
    way, and the *values* are identical between engines.
    """

    controller: str
    num_sessions: int
    num_chunks: int
    engine: str
    levels: object  # int, per chunk
    rebuffer_s: object  # per chunk
    buffer_after_s: object  # per chunk, after pacing
    download_time_s: object  # per chunk
    startup_delay_s: object
    total_rebuffer_s: object
    total_wall_time_s: object
    quality_total: object
    switching_total: object
    qoe_total: object
    mean_bitrate_kbps: object

    def qoe_per_chunk(self):
        """Per-session QoE normalised by chunk count (the population
        metric the fleet histograms aggregate — Eq. 5 per chunk)."""
        if self.num_sessions == 0:
            return []
        if HAVE_NUMPY and isinstance(self.qoe_total, np.ndarray):
            return self.qoe_total / self.num_chunks
        return [value / self.num_chunks for value in self.qoe_total]

    def session_levels(self, i: int) -> List[int]:
        return [int(level) for level in self.levels[i]]


# ----------------------------------------------------------------------
# TraceBank — flattened piecewise-constant traces for gather access
# ----------------------------------------------------------------------


class TraceBank:
    """Per-session views over the batch's (deduplicated) traces.

    Stores every unique trace's segment start times, bandwidths, and
    segment ends as slices of flat arrays, plus per-session gather
    offsets.  ``segend_flat`` holds ``times[i+1]`` (or the duration for
    the last segment) **copied, not recomputed**, so the lockstep walk
    compares and subtracts exactly the floats the scalar walk does.
    ``per_pass`` comes from the trace's own integrator for the same
    reason.
    """

    def __init__(self, traces: Sequence[Trace]) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - vector engine is gated
            raise RuntimeError("TraceBank requires NumPy")
        unique: dict = {}
        order: List[Trace] = []
        session_tids: List[int] = []
        for trace in traces:
            tid = unique.get(id(trace))
            if tid is None:
                tid = len(order)
                unique[id(trace)] = tid
                order.append(trace)
            session_tids.append(tid)

        times_flat: List[float] = []
        bw_flat: List[float] = []
        segend_flat: List[float] = []
        offsets: List[int] = []
        nseg: List[int] = []
        durations: List[float] = []
        per_pass: List[float] = []
        stall_pp: List[float] = []
        for trace in order:
            offsets.append(len(times_flat))
            times = list(trace.timestamps)
            times_flat.extend(times)
            bw_flat.extend(trace.bandwidths_kbps)
            segend_flat.extend(times[1:])
            segend_flat.append(trace.duration_s)
            nseg.append(len(times))
            durations.append(trace.duration_s)
            bits = trace._kilobits_one_pass(0.0, trace.duration_s)
            if bits <= 0:
                raise ValueError(
                    "trace delivers zero bytes per pass; download never completes"
                )
            per_pass.append(bits)
            stall_pp.append(trace._stall_one_pass())

        self.num_traces = len(order)
        self.times_flat = np.asarray(times_flat, dtype=np.float64)
        self.bw_flat = np.asarray(bw_flat, dtype=np.float64)
        self.segend_flat = np.asarray(segend_flat, dtype=np.float64)
        tids = np.asarray(session_tids, dtype=np.int64)
        self.off = np.asarray(offsets, dtype=np.int64)[tids]
        self.nseg = np.asarray(nseg, dtype=np.int64)[tids]
        self.duration = np.asarray(durations, dtype=np.float64)[tids]
        self.per_pass = np.asarray(per_pass, dtype=np.float64)[tids]
        self.stall_pp = np.asarray(stall_pp, dtype=np.float64)[tids]
        self._max_nseg = int(max(nseg)) if nseg else 0

    # ------------------------------------------------------------------

    def _wrap(self, t):
        """``Trace._wrap`` per session: identity below the duration,
        Python float ``%`` (exact fmod for positive operands) above."""
        wrapped = t >= self.duration
        if not wrapped.any():
            return t.copy()
        tw = t.copy()
        for i in np.nonzero(wrapped)[0].tolist():
            tw[i] = float(t[i]) % float(self.duration[i])
        return tw

    def locate(self, tw, hint):
        """``bisect_right(times, tw) - 1`` via hint advance.

        Comparison-only: reset the hint to 0 where the session wrapped
        behind it, then advance while ``tw >= times[idx + 1]`` — the
        exact ``bisect_right`` recurrence, immune to rounding.
        """
        idx = hint.copy()
        behind = tw < self.times_flat[self.off + idx]
        if behind.any():
            idx[behind] = 0
        while True:
            can = idx + 1 < self.nseg
            pos = np.where(can, self.off + idx + 1, self.off)
            advance = can & (tw >= self.times_flat[pos])
            if not advance.any():
                return idx
            idx = idx + advance

    def time_to_download(self, t0, size_kilobits, hint):
        """Vectorized :meth:`Trace.time_to_download` — exact per session.

        A masked lockstep walk: each iteration advances every still-
        downloading session by one trace segment, with the scalar
        inverter's own phase structure (leading partial pass, floor-
        division skip over whole repetitions, wrapped tail walk) and its
        ``_EPS`` completion test.  ``hint`` is updated in place with the
        located start segment for the next chunk's warm start.
        """
        return self._walk(t0, size_kilobits, hint, collect_stall=False)[0]

    def download_time_and_stall(self, t0, size_kilobits, hint):
        """Vectorized :meth:`Trace.download_time_and_stall`.

        The identical walk with a stall accumulator bolted on — zero-
        bandwidth segments contribute their length, whole-repetition
        skips contribute ``full * stall_per_pass`` — mirroring the
        scalar method's accrual points exactly, and (like the scalar
        twin) never touching the download-time arithmetic.
        """
        return self._walk(t0, size_kilobits, hint, collect_stall=True)

    def _walk(self, t0, size_kilobits, hint, collect_stall):
        n = int(t0.shape[0])
        tw = self._wrap(t0)
        start_idx = self.locate(tw, hint)
        hint[:] = start_idx

        out = np.zeros(n, dtype=np.float64)
        stall = np.zeros(n, dtype=np.float64)
        remaining = np.asarray(size_kilobits, dtype=np.float64).copy()
        elapsed = np.zeros(n, dtype=np.float64)
        t = tw.copy()
        idx = start_idx.copy()
        phase = np.zeros(n, dtype=np.int8)  # 0 = leading pass, 1 = post-skip
        active = remaining > 0.0  # size 0 downloads take 0 s, as scalar

        guard = 2 * self._max_nseg + 64
        iteration = 0
        while active.any():
            iteration += 1
            if iteration > guard:  # pragma: no cover - defensive
                raise RuntimeError("download walk failed to terminate")
            ids = np.nonzero(active)[0]

            # Leading pass exhausted: skip whole repetitions by floor
            # division, then restart the walk from the top of the trace.
            trans = (phase[ids] == 0) & (idx[ids] >= self.nseg[ids])
            if trans.any():
                tids = ids[trans]
                big = remaining[tids] > _EPS
                if big.any():
                    mids = tids[big]
                    full = np.floor(remaining[mids] / self.per_pass[mids])
                    remaining[mids] = remaining[mids] - full * self.per_pass[mids]
                    elapsed[mids] = elapsed[mids] + full * self.duration[mids]
                    if collect_stall:
                        stall[mids] = stall[mids] + full * self.stall_pp[mids]
                phase[tids] = 1
                t[tids] = 0.0
                idx[tids] = 0

            # Post-skip loop condition: `while remaining > _EPS`.
            done = (phase[ids] == 1) & (remaining[ids] <= _EPS)
            if done.any():
                dids = ids[done]
                out[dids] = elapsed[dids]
                active[dids] = False
                ids = np.nonzero(active)[0]
                if ids.size == 0:
                    break

            # One segment step, identical arithmetic to the scalar walk.
            pos = self.off[ids] + idx[ids]
            bw = self.bw_flat[pos]
            seg_end = self.segend_flat[pos]
            seg_len = seg_end - t[ids]
            seg_bits = bw * seg_len
            rem = remaining[ids]
            finish = (seg_bits >= rem - _EPS) & (bw > 0.0)
            if finish.any():
                fids = ids[finish]
                out[fids] = elapsed[fids] + rem[finish] / bw[finish]
                active[fids] = False
            cont = ~finish
            if cont.any():
                cids = ids[cont]
                remaining[cids] = remaining[cids] - seg_bits[cont]
                elapsed[cids] = elapsed[cids] + seg_len[cont]
                if collect_stall:
                    zero = bw[cont] == 0.0
                    if zero.any():
                        zids = cids[zero]
                        stall[zids] = stall[zids] + seg_len[cont][zero]
                t[cids] = seg_end[cont]
                idx[cids] = idx[cids] + 1
                wrap = (phase[cids] == 1) & (idx[cids] >= self.nseg[cids])
                if wrap.any():
                    wids = cids[wrap]
                    t[wids] = 0.0
                    idx[wids] = 0
        return out, stall


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------


def _empty_result(controller: str, manifest: VideoManifest, engine: str) -> BatchResult:
    empty: List = []
    return BatchResult(
        controller=controller,
        num_sessions=0,
        num_chunks=manifest.num_chunks,
        engine=engine,
        levels=empty,
        rebuffer_s=[],
        buffer_after_s=[],
        download_time_s=[],
        startup_delay_s=[],
        total_rebuffer_s=[],
        total_wall_time_s=[],
        quality_total=[],
        switching_total=[],
        qoe_total=[],
        mean_bitrate_kbps=[],
    )


def _run_vector(
    controller_name: str,
    traces: Sequence[Trace],
    manifest: VideoManifest,
    config: SessionConfig,
    cache_dir: Optional[str],
    table_config: Optional[FastMPCConfig],
) -> BatchResult:
    n = len(traces)
    num_chunks = manifest.num_chunks
    num_levels = len(manifest.ladder)
    bank = TraceBank(traces)
    controller = make_batch_controller(controller_name, cache_dir, table_config)
    controller.prepare(manifest, config, n)

    chunk_s = manifest.chunk_duration_s
    threshold = config.pacing_threshold_s
    ladder_arr = np.asarray(manifest.ladder.levels_kbps, dtype=np.float64)
    quality_arr = np.asarray(
        [config.quality(rate) for rate in manifest.ladder], dtype=np.float64
    )
    sizes = np.asarray(
        [
            [manifest.chunk_size_kilobits(k, level) for level in range(num_levels)]
            for k in range(num_chunks)
        ],
        dtype=np.float64,
    )

    t = np.zeros(n, dtype=np.float64)
    buffer_s = np.zeros(n, dtype=np.float64)
    total_rebuffer = np.zeros(n, dtype=np.float64)
    playback_start = np.zeros(n, dtype=np.float64)
    prev_levels = np.zeros(n, dtype=np.int64)
    prev_quality = np.zeros(n, dtype=np.float64)
    quality_total = np.zeros(n, dtype=np.float64)
    switching_total = np.zeros(n, dtype=np.float64)
    bitrate_total = np.zeros(n, dtype=np.float64)
    hint = np.zeros(n, dtype=np.int64)

    levels_out = np.empty((n, num_chunks), dtype=np.int64)
    rebuffer_out = np.empty((n, num_chunks), dtype=np.float64)
    buffer_out = np.empty((n, num_chunks), dtype=np.float64)
    download_out = np.empty((n, num_chunks), dtype=np.float64)

    wants_gap = controller.wants_gap_context
    for k in range(num_chunks):
        levels = controller.decide(k, buffer_s, prev_levels)
        if levels.size and (levels.min() < 0 or levels.max() >= num_levels):
            raise ValueError(
                f"{controller_name} returned an invalid level for chunk {k}"
            )
        size = sizes[k][levels]
        if wants_gap:
            download_time, stalled = bank.download_time_and_stall(t, size, hint)
        else:
            download_time = bank.time_to_download(t, size, hint)
            stalled = None
        t_end = t + download_time

        if k == 0:
            # FIRST_CHUNK: playback has not started, so nothing drains
            # (scalar: drain = max(0, t_end - max(inf, t)) = 0), and
            # playback begins at this chunk's completion (wait = 0.0 for
            # every supported controller).
            rebuffer = np.zeros(n, dtype=np.float64)
            t = t_end
            buffer_s = buffer_s + chunk_s
            playback_start = t.copy()
        else:
            # Playback started at chunk 0's completion, so
            # max(playback_start, t) == t for every later chunk.
            drain = np.maximum(0.0, t_end - t)
            rebuffer = np.maximum(drain - buffer_s, 0.0)
            buffer_s = np.maximum(buffer_s - drain, 0.0)
            total_rebuffer = total_rebuffer + rebuffer
            t = t_end
            buffer_s = buffer_s + chunk_s

        # Eq. 4 pacing: wait until the buffer drains to the threshold.
        # drain_start = max(t, playback_start) = t, so the wait is
        # exactly (buffer - threshold), as in the scalar expressions.
        over = buffer_s > threshold
        if over.any():
            t[over] = t[over] + (buffer_s[over] - threshold)
            buffer_s[over] = threshold

        with np.errstate(divide="ignore"):
            throughput = size / download_time

        levels_out[:, k] = levels
        rebuffer_out[:, k] = rebuffer
        buffer_out[:, k] = buffer_s
        download_out[:, k] = download_time

        chunk_quality = quality_arr[levels]
        quality_total = quality_total + chunk_quality
        if k > 0:
            switching_total = switching_total + np.abs(chunk_quality - prev_quality)
        prev_quality = chunk_quality
        bitrate_total = bitrate_total + ladder_arr[levels]

        controller.observe(throughput, download_time, stalled)
        prev_levels = levels

    weights = config.weights
    qoe_total = quality_total - weights.switching * switching_total
    qoe_total = qoe_total - weights.rebuffering * total_rebuffer
    qoe_total = qoe_total - weights.startup * playback_start

    return BatchResult(
        controller=controller_name,
        num_sessions=n,
        num_chunks=num_chunks,
        engine="vector",
        levels=levels_out,
        rebuffer_s=rebuffer_out,
        buffer_after_s=buffer_out,
        download_time_s=download_out,
        startup_delay_s=playback_start,
        total_rebuffer_s=total_rebuffer,
        total_wall_time_s=t,
        quality_total=quality_total,
        switching_total=switching_total,
        qoe_total=qoe_total,
        mean_bitrate_kbps=bitrate_total / num_chunks,
    )


def _run_scalar(
    controller_name: str,
    traces: Sequence[Trace],
    manifest: VideoManifest,
    config: SessionConfig,
    cache_dir: Optional[str],
    table_config: Optional[FastMPCConfig],
) -> BatchResult:
    # The reference path: one simulate_session per row.  Parity with the
    # vector engine is the test suite's core invariant; fresh algorithm
    # instances per session mirror the vector engine's per-row state.
    from ..sim.session import simulate_session

    num_chunks = manifest.num_chunks
    levels: List[List[int]] = []
    rebuffer: List[List[float]] = []
    buffer_after: List[List[float]] = []
    download: List[List[float]] = []
    startup: List[float] = []
    total_rebuffer: List[float] = []
    wall: List[float] = []
    quality: List[float] = []
    switching: List[float] = []
    qoe: List[float] = []
    mean_bitrate: List[float] = []
    for trace in traces:
        algorithm = make_scalar_algorithm(controller_name, cache_dir, table_config)
        result = simulate_session(algorithm, trace, manifest, config)
        breakdown = result.qoe()
        levels.append([record.level_index for record in result.records])
        rebuffer.append([record.rebuffer_s for record in result.records])
        buffer_after.append([record.buffer_after_s for record in result.records])
        download.append([record.download_time_s for record in result.records])
        startup.append(result.startup_delay_s)
        total_rebuffer.append(result.total_rebuffer_s)
        wall.append(result.total_wall_time_s)
        quality.append(breakdown.quality_total)
        switching.append(breakdown.switching_total)
        qoe.append(breakdown.total)
        total = 0.0
        for record in result.records:
            total += record.bitrate_kbps
        mean_bitrate.append(total / num_chunks)
    return BatchResult(
        controller=controller_name,
        num_sessions=len(traces),
        num_chunks=num_chunks,
        engine="scalar",
        levels=levels,
        rebuffer_s=rebuffer,
        buffer_after_s=buffer_after,
        download_time_s=download,
        startup_delay_s=startup,
        total_rebuffer_s=total_rebuffer,
        total_wall_time_s=wall,
        quality_total=quality,
        switching_total=switching,
        qoe_total=qoe,
        mean_bitrate_kbps=mean_bitrate,
    )


def run_batch(
    controller: str,
    traces: Sequence[Trace],
    manifest: VideoManifest,
    config: Optional[SessionConfig] = None,
    *,
    cache_dir: Optional[str] = None,
    table_config: Optional[FastMPCConfig] = None,
    engine: str = "auto",
) -> BatchResult:
    """Simulate one session per trace, all in lockstep.

    Parameters
    ----------
    controller:
        One of :data:`~repro.fleet.controllers.SUPPORTED_CONTROLLERS`.
    traces:
        One :class:`Trace` per session (repeats allowed and deduplicated
        internally).  Empty input returns a well-formed empty result.
    engine:
        ``"auto"`` (vector when NumPy is available, else scalar),
        ``"vector"``, or ``"scalar"``.  Both engines produce identical
        values; the scalar engine is the reference simulator itself.
    table_config:
        Optional FastMPC table discretization override, threaded to both
        engines so they keep sharing one table.
    """
    if controller not in SUPPORTED_CONTROLLERS:
        raise ValueError(
            f"unsupported fleet controller {controller!r}; expected one of "
            f"{SUPPORTED_CONTROLLERS}"
        )
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    if manifest.num_chunks < 1:
        raise ValueError("manifest must have at least one chunk")
    config = config if config is not None else SessionConfig()
    traces = list(traces)
    if engine == "auto":
        engine = "vector" if HAVE_NUMPY else "scalar"
    if engine == "vector" and not HAVE_NUMPY:
        raise RuntimeError("the vector engine requires NumPy")
    if not traces:
        return _empty_result(controller, manifest, engine)
    if engine == "vector":
        return _run_vector(
            controller, traces, manifest, config, cache_dir, table_config
        )
    return _run_scalar(controller, traces, manifest, config, cache_dir, table_config)
