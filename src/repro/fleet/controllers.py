"""Vectorized batch controllers — one decision call for N sessions.

Each class here is the array-of-sessions twin of one registry algorithm,
and the pairing is *exact*: for every session in the batch, the level
sequence produced through the batch interface is bit-identical to what
the scalar algorithm would have chosen inside
:func:`repro.sim.session.simulate_session` (same arithmetic, same
operation order, same tie-breaks).  That parity is what lets the fleet
stepper claim its results ARE the reference simulator's results, just
computed thousands of sessions at a time.

How exactness is preserved, per mechanism:

* Elementwise float64 NumPy arithmetic (add/sub/mul/div/maximum) is
  IEEE-754 identical to the equivalent Python-float expression, so every
  formula below replicates its scalar twin's operation order literally.
* The harmonic-mean window sums reciprocals with an explicit sequential
  chain of elementwise adds (oldest sample first, zero-padded tail) —
  the same order as Python's ``sum`` over the predictor's deque, without
  relying on NumPy reduction internals.
* Max-of-window reductions (the RobustMPC error bound) are
  order-independent, so ``np.max`` is safe.
* FastMPC decisions go through ``DecisionTable.lookup_batch``, which is
  pinned scalar-equal to ``lookup`` by the PR-6 fast-path test suite,
  against the *same* table ``FastMPCController.prepare`` would build.
* BOLA's and DAS-IP's exact first-wins argmax and the ladder's
  ``highest_at_most`` scan are replicated as comparison-only
  loops/searches (no arithmetic, hence no rounding to diverge).

The module is NumPy-only by design: without NumPy the fleet stepper runs
sessions through the reference simulator itself (see
:mod:`repro.fleet.stepper`), which is bit-identical by construction.
"""

from __future__ import annotations

import math
from typing import Optional

from ..abr.base import SessionConfig
from ..abr.bola import BolaAlgorithm
from ..abr.buffer_based import BufferBasedAlgorithm, BufferBasedChunkMapAlgorithm
from ..abr.dasip import DasIpAlgorithm
from ..abr.fixed import ConstantLevelAlgorithm
from ..abr.rate_based import RateBasedAlgorithm
from ..core.fastmpc import FastMPCConfig, FastMPCController, build_decision_table
from ..core.npcompat import HAVE_NUMPY, np
from ..prediction.base import OBSERVATION_FLOOR_KBPS
from ..prediction.streaming import GapCorrectedHarmonicPredictor
from ..video.manifest import VideoManifest

__all__ = [
    "SUPPORTED_CONTROLLERS",
    "supported_controllers",
    "make_batch_controller",
    "make_scalar_algorithm",
]

#: Registry names with an exact vectorized twin.  The remaining registry
#: algorithms (mpc, robust-mpc, festive, dashjs, mdp) run a per-chunk
#: solver or stateful heuristics that have no array form yet; the fleet
#: driver rejects them up front rather than silently falling back.
SUPPORTED_CONTROLLERS = (
    "lowest",
    "highest",
    "rb",
    "bb",
    "bba-1",
    "bola",
    "das-ip",
    "fastmpc",
    "robust-fastmpc",
    "fastmpc-gap",
)


def supported_controllers() -> tuple:
    """Controller names the batch stepper can run (registry-compatible)."""
    return SUPPORTED_CONTROLLERS


def make_scalar_algorithm(
    name: str,
    cache_dir: Optional[str] = None,
    table_config: Optional[FastMPCConfig] = None,
):
    """The reference (scalar) algorithm a batch controller is pinned to.

    Mirrors the registry factories exactly, with the fleet's ``cache_dir``
    and optional table-discretization override threaded through.
    """
    if name == "lowest":
        return ConstantLevelAlgorithm(0)
    if name == "highest":
        return ConstantLevelAlgorithm(-1)
    if name == "rb":
        return RateBasedAlgorithm()
    if name == "bb":
        return BufferBasedAlgorithm()
    if name == "bba-1":
        return BufferBasedChunkMapAlgorithm()
    if name == "bola":
        return BolaAlgorithm()
    if name == "das-ip":
        return DasIpAlgorithm()
    if name == "fastmpc":
        return FastMPCController(config=table_config, cache_dir=cache_dir)
    if name == "robust-fastmpc":
        return FastMPCController(
            config=table_config, robust=True, cache_dir=cache_dir
        )
    if name == "fastmpc-gap":
        return FastMPCController(
            predictor=GapCorrectedHarmonicPredictor(),
            config=table_config,
            cache_dir=cache_dir,
            name="fastmpc-gap",
        )
    raise ValueError(
        f"unsupported fleet controller {name!r}; expected one of "
        f"{SUPPORTED_CONTROLLERS}"
    )


# ----------------------------------------------------------------------
# Shared vectorized predictor state
# ----------------------------------------------------------------------


class _BatchHarmonic:
    """N independent harmonic-mean windows advancing in lockstep.

    Sessions in a batch observe one throughput per chunk simultaneously,
    so the fill level is a single integer shared by all rows.  Samples
    are stored as reciprocals, oldest first, with a zero tail while the
    window warms up: adding a trailing ``+0.0`` never changes a positive
    partial sum, so the explicit sequential add chain below reproduces
    ``len(samples) / sum(1.0 / s for s in samples)`` exactly.
    """

    __slots__ = ("window", "cold_start_kbps", "_recip", "_filled")

    def __init__(self, n: int, window: int = 5, cold_start_kbps: float = 100.0):
        self.window = window
        self.cold_start_kbps = cold_start_kbps
        self._recip = np.zeros((n, window), dtype=np.float64)
        self._filled = 0

    def estimate(self):
        if self._filled == 0:
            return np.full(self._recip.shape[0], self.cold_start_kbps)
        total = self._recip[:, 0].copy()
        for j in range(1, self.window):
            total += self._recip[:, j]
        return self._filled / total

    def observe(self, throughput_kbps) -> None:
        clamped = np.maximum(throughput_kbps, OBSERVATION_FLOOR_KBPS)
        if self._filled < self.window:
            self._recip[:, self._filled] = 1.0 / clamped
            self._filled += 1
        else:
            self._recip[:, :-1] = self._recip[:, 1:]
            self._recip[:, -1] = 1.0 / clamped


def _batch_active_rates(throughput_kbps, download_time_s, stall_s):
    """Elementwise :attr:`ThroughputObservation.active_kbps` twin.

    Rows with no in-window stall (or a fully stalled transfer) keep the
    clamped wall rate *by selection* — ``np.where`` copies the value, no
    arithmetic touches it — which is what preserves the scalar
    degradation contract bit for bit.
    """
    clamped = np.maximum(throughput_kbps, OBSERVATION_FLOOR_KBPS)
    engaged = (stall_s > 0.0) & (stall_s < download_time_s)
    denom = np.where(engaged, download_time_s - stall_s, 1.0)
    active = np.where(engaged, clamped * (download_time_s / denom), clamped)
    return active, engaged


class _BatchGapHarmonic:
    """N :class:`GapCorrectedHarmonicPredictor` windows in lockstep.

    Stores active rates (oldest first) plus a per-sample corrected flag;
    the estimate replicates the scalar predictor's expression order —
    harmonic mean, optional robust discount, then the clamp into the
    window's [min, max] active-rate range, applied only to rows where a
    correction engaged (min/max/comparison selection, no rounding).
    """

    __slots__ = (
        "window",
        "cold_start_kbps",
        "robust_discount",
        "_active",
        "_corrected",
        "_filled",
    )

    def __init__(
        self,
        n: int,
        window: int = 5,
        cold_start_kbps: float = 100.0,
        robust_discount: float = 0.0,
    ):
        self.window = window
        self.cold_start_kbps = cold_start_kbps
        self.robust_discount = robust_discount
        self._active = np.zeros((n, window), dtype=np.float64)
        self._corrected = np.zeros((n, window), dtype=bool)
        self._filled = 0

    def estimate(self):
        n = self._active.shape[0]
        if self._filled == 0:
            return np.full(n, self.cold_start_kbps)
        cols = self._active[:, : self._filled]
        recip = 1.0 / cols
        total = recip[:, 0].copy()
        for j in range(1, self._filled):
            total += recip[:, j]
        estimate = self._filled / total
        if self.robust_discount > 0.0:
            estimate = estimate / (1.0 + self.robust_discount)
            engaged = np.ones(n, dtype=bool)
        else:
            engaged = self._corrected[:, : self._filled].any(axis=1)
            if not engaged.any():
                return estimate
        lo = np.min(cols, axis=1)
        hi = np.max(cols, axis=1)
        clamped = np.minimum(np.maximum(estimate, lo), hi)
        return np.where(engaged, clamped, estimate)

    def observe(self, throughput_kbps, download_time_s, stall_s) -> None:
        active, engaged = _batch_active_rates(
            throughput_kbps, download_time_s, stall_s
        )
        if self._filled < self.window:
            self._active[:, self._filled] = active
            self._corrected[:, self._filled] = engaged
            self._filled += 1
        else:
            self._active[:, :-1] = self._active[:, 1:]
            self._active[:, -1] = active
            self._corrected[:, :-1] = self._corrected[:, 1:]
            self._corrected[:, -1] = engaged


class _BatchGapEWMA:
    """N :class:`GapCorrectedEWMAPredictor` levels in lockstep.

    The level recurrence is the scalar ``alpha * a + (1 - alpha) * level``
    elementwise; bounds are the running min/max active rate and a row's
    correction flag, once set, stays set — exactly the scalar predictor's
    session-sticky clamp semantics.
    """

    __slots__ = (
        "alpha",
        "cold_start_kbps",
        "robust_discount",
        "_level",
        "_lo",
        "_hi",
        "_any_corrected",
        "_n",
    )

    def __init__(
        self,
        n: int,
        alpha: float = 0.4,
        cold_start_kbps: float = 100.0,
        robust_discount: float = 0.0,
    ):
        self.alpha = alpha
        self.cold_start_kbps = cold_start_kbps
        self.robust_discount = robust_discount
        self._n = n
        self._level = None
        self._lo = None
        self._hi = None
        self._any_corrected = np.zeros(n, dtype=bool)

    def estimate(self):
        if self._level is None:
            return np.full(self._n, self.cold_start_kbps)
        estimate = self._level
        if self.robust_discount > 0.0:
            estimate = estimate / (1.0 + self.robust_discount)
            engaged = np.ones(self._n, dtype=bool)
        else:
            engaged = self._any_corrected
            if not engaged.any():
                return estimate.copy()
        clamped = np.minimum(np.maximum(estimate, self._lo), self._hi)
        return np.where(engaged, clamped, estimate)

    def observe(self, throughput_kbps, download_time_s, stall_s) -> None:
        active, engaged = _batch_active_rates(
            throughput_kbps, download_time_s, stall_s
        )
        self._any_corrected = self._any_corrected | engaged
        if self._level is None:
            self._level = active.copy()
            self._lo = active.copy()
            self._hi = active.copy()
        else:
            self._level = self.alpha * active + (1.0 - self.alpha) * self._level
            self._lo = np.minimum(self._lo, active)
            self._hi = np.maximum(self._hi, active)


class _BatchErrorTracker:
    """N :class:`PredictionErrorTracker` windows in lockstep."""

    __slots__ = ("window", "_errors", "_filled")

    def __init__(self, n: int, window: int = 5):
        self.window = window
        self._errors = np.zeros((n, window), dtype=np.float64)
        self._filled = 0

    def record(self, predicted_kbps, actual_kbps) -> None:
        actual = np.maximum(actual_kbps, OBSERVATION_FLOOR_KBPS)
        err = (predicted_kbps - actual) / actual
        if self._filled < self.window:
            self._errors[:, self._filled] = err
            self._filled += 1
        else:
            self._errors[:, :-1] = self._errors[:, 1:]
            self._errors[:, -1] = err

    def max_recent_abs_error(self):
        if self._filled == 0:
            return np.zeros(self._errors.shape[0])
        # max is order-independent, so the reduction is safe to vectorize.
        return np.max(np.abs(self._errors[:, : self._filled]), axis=1)


def _highest_at_most_batch(ladder_array, budgets):
    """Vectorized ``BitrateLadder.highest_at_most``: the largest index
    whose level is <= the budget, or 0 when none fit (comparisons only,
    so batch and scalar agree on every input)."""
    idx = np.searchsorted(ladder_array, budgets, side="right") - 1
    return np.maximum(idx, 0)


# ----------------------------------------------------------------------
# Batch controllers
# ----------------------------------------------------------------------


class _BatchController:
    """Array-of-sessions decision interface driven by the stepper."""

    #: Controllers whose predictors consume the on/off structure of the
    #: download (gap-corrected twins) set this True; the stepper then
    #: runs the stall-collecting trace walk and passes duration/stall
    #: arrays to :meth:`observe`.
    wants_gap_context = False

    def prepare(self, manifest: VideoManifest, config: SessionConfig, n: int):
        self.manifest = manifest
        self.config = config
        self.n = n

    def decide(self, chunk_index: int, buffer_s, prev_levels):
        """Level indices (int64 array) for chunk ``chunk_index``.

        ``prev_levels`` holds zeros at the first chunk, matching the
        scalar convention ``prev_level_index None -> 0`` used by the
        algorithms that consult it.
        """
        raise NotImplementedError

    def observe(self, throughput_kbps, download_time_s=None, stall_s=None) -> None:
        """Feedback after the chunk completed (raw ``size / time``).

        ``download_time_s`` / ``stall_s`` are only populated (and only
        consumed) when :attr:`wants_gap_context` is set.
        """


class _BatchConstant(_BatchController):
    def __init__(self, level_index: int):
        self._requested = level_index

    def prepare(self, manifest, config, n):
        super().prepare(manifest, config, n)
        count = len(manifest.ladder)
        level = self._requested
        if level < 0:
            level += count
        if not 0 <= level < count:
            raise ValueError(
                f"level {self._requested} invalid for a {count}-level ladder"
            )
        self._level = level

    def decide(self, chunk_index, buffer_s, prev_levels):
        return np.full(self.n, self._level, dtype=np.int64)


class _BatchRateBased(_BatchController):
    def __init__(self, safety_factor: float = 1.0):
        self.safety_factor = safety_factor

    def prepare(self, manifest, config, n):
        super().prepare(manifest, config, n)
        self._ladder = np.asarray(manifest.ladder.levels_kbps, dtype=np.float64)
        self._predictor = _BatchHarmonic(n)

    def decide(self, chunk_index, buffer_s, prev_levels):
        budget = self.safety_factor * self._predictor.estimate()
        return _highest_at_most_batch(self._ladder, budget)

    def observe(self, throughput_kbps, download_time_s=None, stall_s=None):
        self._predictor.observe(throughput_kbps)


class _BatchBufferBased(_BatchController):
    def __init__(self, reservoir_s: float = 5.0, cushion_s: float = 10.0):
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def prepare(self, manifest, config, n):
        super().prepare(manifest, config, n)
        self._ladder = np.asarray(manifest.ladder.levels_kbps, dtype=np.float64)
        self._min = manifest.ladder.min_kbps
        self._max = manifest.ladder.max_kbps

    def decide(self, chunk_index, buffer_s, prev_levels):
        frac = (buffer_s - self.reservoir_s) / self.cushion_s
        linear = self._min + frac * (self._max - self._min)
        target = np.where(
            buffer_s <= self.reservoir_s,
            self._min,
            np.where(
                buffer_s >= self.reservoir_s + self.cushion_s, self._max, linear
            ),
        )
        return _highest_at_most_batch(self._ladder, target)


class _BatchBufferBasedChunkMap(_BatchController):
    """BBA-1's chunk-size map; per-chunk size arrays, comparisons only."""

    def __init__(self, reservoir_s: float = 5.0, cushion_s: float = 10.0):
        self.reservoir_s = reservoir_s
        self.cushion_s = cushion_s

    def decide(self, chunk_index, buffer_s, prev_levels):
        manifest = self.manifest
        sizes = [
            manifest.chunk_size_kilobits(chunk_index, level)
            for level in range(len(manifest.ladder))
        ]
        s_min = sizes[0]
        s_max = sizes[-1]
        frac = (buffer_s - self.reservoir_s) / self.cushion_s
        linear = s_min + frac * (s_max - s_min)
        target = np.where(
            buffer_s <= self.reservoir_s,
            s_min,
            np.where(
                buffer_s >= self.reservoir_s + self.cushion_s, s_max, linear
            ),
        )
        # Chunk sizes are strictly increasing per level, so searchsorted
        # is the scalar "highest size <= target" scan (comparisons only).
        idx = np.searchsorted(np.asarray(sizes), target, side="right") - 1
        return np.maximum(idx, 0)


class _BatchBola(_BatchController):
    def __init__(self, gamma_p: float = 5.0):
        self.gamma_p = gamma_p

    def prepare(self, manifest, config, n):
        super().prepare(manifest, config, n)
        # Reuse the scalar implementation's prepared constants so the
        # utilities and control parameter are the very same floats.
        reference = BolaAlgorithm(gamma_p=self.gamma_p)
        reference.prepare(manifest, config)
        p = manifest.chunk_duration_s
        self._p = p
        self._offsets = [
            reference.control_v * (utility + self.gamma_p)
            for utility in reference._utilities
        ]
        self._sizes = [p * r for r in manifest.ladder]

    def decide(self, chunk_index, buffer_s, prev_levels):
        q_chunks = buffer_s / self._p
        best_score = np.full(self.n, -math.inf)
        best_level = np.zeros(self.n, dtype=np.int64)
        # The scalar loop's exact first-wins argmax, level by level:
        # strict ``>`` only, no epsilon, in lockstep with
        # BolaAlgorithm.select_bitrate (scale-dependent epsilons flip
        # levels on large-magnitude ladders).
        for level, (offset, size) in enumerate(zip(self._offsets, self._sizes)):
            score = (offset - q_chunks) / size
            better = score > best_score
            best_score[better] = score[better]
            best_level[better] = level
        return best_level


class _BatchDasIp(_BatchController):
    """DAS-IP's index policy; shares the exact first-wins argmax idiom."""

    def __init__(self, beta: float = 1.0, gamma: float = 0.05):
        self.beta = beta
        self.gamma = gamma

    def prepare(self, manifest, config, n):
        super().prepare(manifest, config, n)
        # Reuse the scalar implementation's prepared utilities so they
        # are the very same floats.
        reference = DasIpAlgorithm(beta=self.beta, gamma=self.gamma)
        reference.prepare(manifest, config)
        self._utilities = list(reference._utilities)
        self._predictor = _BatchHarmonic(n)

    def decide(self, chunk_index, buffer_s, prev_levels):
        c_hat = self._predictor.estimate()
        best_score = np.full(self.n, -math.inf)
        best_level = np.zeros(self.n, dtype=np.int64)
        # The scalar loop's exact first-wins argmax (strict ``>``).
        for level, utility in enumerate(self._utilities):
            size = self.manifest.chunk_size_kilobits(chunk_index, level)
            deficit = np.maximum(0.0, size / c_hat - buffer_s)
            switch = np.abs(level - prev_levels)
            score = utility - self.beta * deficit - self.gamma * switch
            better = score > best_score
            best_score[better] = score[better]
            best_level[better] = level
        return best_level

    def observe(self, throughput_kbps, download_time_s=None, stall_s=None):
        self._predictor.observe(throughput_kbps)


class _BatchFastMPC(_BatchController):
    def __init__(
        self,
        robust: bool = False,
        gap: bool = False,
        table_config: Optional[FastMPCConfig] = None,
        cache_dir: Optional[str] = None,
    ):
        self.robust = robust
        self.gap = gap
        self.wants_gap_context = gap
        self.table_config = table_config
        self.cache_dir = cache_dir

    def prepare(self, manifest, config, n):
        super().prepare(manifest, config, n)
        quality_values = tuple(config.quality(r) for r in manifest.ladder)
        self.table = build_decision_table(
            manifest.ladder.levels_kbps,
            manifest.chunk_duration_s,
            config.buffer_capacity_s,
            config.weights,
            quality_values=quality_values,
            config=self.table_config,
            cache_dir=self.cache_dir,
        )
        self._predictor = (
            _BatchGapHarmonic(n) if self.gap else _BatchHarmonic(n)
        )
        self._errors = _BatchErrorTracker(n)
        self._pending_raw = None

    def decide(self, chunk_index, buffer_s, prev_levels):
        raw = self._predictor.estimate()
        self._pending_raw = raw
        query = raw
        if self.robust:
            query = raw / (1.0 + self._errors.max_recent_abs_error())
        levels = self.table.lookup_batch(buffer_s, prev_levels, query)
        return np.asarray(levels, dtype=np.int64)

    def observe(self, throughput_kbps, download_time_s=None, stall_s=None):
        if self._pending_raw is not None:
            self._errors.record(self._pending_raw, throughput_kbps)
            self._pending_raw = None
        if self.gap:
            self._predictor.observe(throughput_kbps, download_time_s, stall_s)
        else:
            self._predictor.observe(throughput_kbps)


def make_batch_controller(
    name: str,
    cache_dir: Optional[str] = None,
    table_config: Optional[FastMPCConfig] = None,
) -> _BatchController:
    """Instantiate the vectorized twin of a registry algorithm."""
    if not HAVE_NUMPY:  # pragma: no cover - guarded by the stepper
        raise RuntimeError("batch controllers need NumPy; use the scalar engine")
    if name == "lowest":
        return _BatchConstant(0)
    if name == "highest":
        return _BatchConstant(-1)
    if name == "rb":
        return _BatchRateBased()
    if name == "bb":
        return _BatchBufferBased()
    if name == "bba-1":
        return _BatchBufferBasedChunkMap()
    if name == "bola":
        return _BatchBola()
    if name == "das-ip":
        return _BatchDasIp()
    if name == "fastmpc":
        return _BatchFastMPC(table_config=table_config, cache_dir=cache_dir)
    if name == "robust-fastmpc":
        return _BatchFastMPC(
            robust=True, table_config=table_config, cache_dir=cache_dir
        )
    if name == "fastmpc-gap":
        return _BatchFastMPC(
            gap=True, table_config=table_config, cache_dir=cache_dir
        )
    raise ValueError(
        f"unsupported fleet controller {name!r}; expected one of "
        f"{SUPPORTED_CONTROLLERS}"
    )
