"""The fleet driver — million-session populations over a process pool.

``run_fleet`` samples one seeded scenario stream, cuts it into
contiguous fixed-size shards, steps each shard through
:func:`repro.fleet.stepper.run_batch` (grouped so every (controller,
preset, ladder) cell in a shard is one vectorized call), and merges the
per-shard :class:`FleetResult` payloads **in shard-index order**.

Determinism across worker counts falls out of three choices:

* shard boundaries depend only on ``shard_size``, never on the worker
  count — workers change scheduling, not the work;
* shards travel to workers as picklable scenario tuples and come back
  as serialized aggregate dicts (the same lossless path the cluster
  ``/metrics`` merge uses);
* the parent folds shard payloads in shard order, and every aggregate
  field is either integer-exact or an ``fsum``-accumulated float, so
  1 worker and N workers produce bit-identical merged results.

A zero-session fleet returns a well-formed empty :class:`FleetResult`
without touching the pool.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.events import FleetShard, FleetSummary
from ..obs.tracer import Tracer
from .aggregate import FleetResult
from .scenarios import (
    Scenario,
    ScenarioSpace,
    manifest_for,
    sample_scenarios,
    session_config_for,
    trace_pools,
)
from .stepper import run_batch

__all__ = ["FleetConfig", "run_fleet", "run_shard"]


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run's parameters (picklable, fully seed-determined)."""

    sessions: int
    seed: int = 7
    shard_size: int = 4096
    space: ScenarioSpace = field(default_factory=ScenarioSpace)
    cache_dir: Optional[str] = None
    #: Stepper engine, forwarded to :func:`run_batch`.
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.sessions < 0:
            raise ValueError("sessions must be >= 0")
        if self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")


def run_shard(
    space: ScenarioSpace,
    scenarios: Sequence[Scenario],
    cache_dir: Optional[str] = None,
    engine: str = "auto",
) -> dict:
    """Run one shard and return its serialized :class:`FleetResult`.

    Module-level so process pools can pickle it.  Scenarios are grouped
    by (controller, preset, ladder) — the axes that fix the batch
    controller and manifest — and each group is one ``run_batch`` call;
    sessions then fan back out to their (…, dataset, …) arms.  The
    ``fsum``-based histogram accumulation makes the aggregate
    independent of the grouping order.
    """
    pools = trace_pools(space)
    result = FleetResult()
    groups: Dict[Tuple[str, str, str], List[Scenario]] = {}
    for scenario in scenarios:
        key = (scenario.controller, scenario.preset, scenario.ladder)
        groups.setdefault(key, []).append(scenario)
    for controller, preset, ladder in sorted(groups):
        group = groups[(controller, preset, ladder)]
        traces = [pools[s.dataset][s.trace_index] for s in group]
        batch = run_batch(
            controller,
            traces,
            manifest_for(ladder, space.num_chunks),
            session_config_for(preset),
            cache_dir=cache_dir,
            table_config=space.table_config,
            engine=engine,
        )
        qoe = batch.qoe_per_chunk()
        rebuffer = batch.total_rebuffer_s
        bitrate = batch.mean_bitrate_kbps
        by_arm: Dict[str, List[int]] = {}
        for row, scenario in enumerate(group):
            by_arm.setdefault(scenario.arm_key, []).append(row)
        for arm_key in sorted(by_arm):
            rows = by_arm[arm_key]
            result.arm(arm_key).observe_sessions(
                [float(qoe[i]) for i in rows],
                [float(rebuffer[i]) for i in rows],
                [float(bitrate[i]) for i in rows],
            )
        result.sessions += len(group)
    return result.to_dict()


def _run_shard_job(args) -> dict:
    space, scenarios, cache_dir, engine = args
    return run_shard(space, scenarios, cache_dir=cache_dir, engine=engine)


def run_fleet(
    config: FleetConfig,
    workers: int = 1,
    tracer: Optional[Tracer] = None,
) -> FleetResult:
    """Run the whole fleet and return the merged population aggregates.

    ``workers > 1`` shards across a process pool; the result is
    bit-identical to ``workers=1`` because shard boundaries and the
    merge order depend only on the config.  A tracer (if given) receives
    one :class:`FleetShard` event per completed shard and a closing
    :class:`FleetSummary`.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    tracing = tracer is not None and tracer.enabled
    t0 = time.perf_counter()
    scenarios = sample_scenarios(config.space, config.sessions, config.seed)
    shards = [
        scenarios[start : start + config.shard_size]
        for start in range(0, len(scenarios), config.shard_size)
    ]

    merged = FleetResult.empty()
    if shards:
        jobs = [
            (config.space, tuple(shard), config.cache_dir, config.engine)
            for shard in shards
        ]
        if workers == 1 or len(shards) == 1:
            payloads = []
            for index, job in enumerate(jobs):
                shard_t0 = time.perf_counter()
                payload = _run_shard_job(job)
                payloads.append(payload)
                if tracing:
                    tracer.emit(
                        FleetShard(
                            session_id=tracer.session_id,
                            t_mono=tracer.now(),
                            shard_index=index,
                            sessions=len(shards[index]),
                            wall_s=time.perf_counter() - shard_t0,
                        )
                    )
        else:
            with multiprocessing.Pool(processes=min(workers, len(shards))) as pool:
                payloads = pool.map(_run_shard_job, jobs)
            if tracing:
                for index, shard in enumerate(shards):
                    tracer.emit(
                        FleetShard(
                            session_id=tracer.session_id,
                            t_mono=tracer.now(),
                            shard_index=index,
                            sessions=len(shard),
                            wall_s=0.0,  # not measured inside pool workers
                        )
                    )
        # Ordered fold: shard index order, independent of worker count.
        for payload in payloads:
            merged.merge(FleetResult.from_dict(payload))

    wall_s = time.perf_counter() - t0
    if tracing:
        tracer.emit(
            FleetSummary(
                session_id=tracer.session_id,
                t_mono=tracer.now(),
                sessions=merged.sessions,
                shards=len(shards),
                workers=workers,
                wall_s=wall_s,
                sessions_per_s=merged.sessions / wall_s if wall_s > 0 else 0.0,
            )
        )
    return merged
