"""Streaming population aggregates — per-arm histograms, lossless merge.

An *arm* is one (controller, dataset, QoE preset, ladder) cell of the
scenario space.  Per arm the fleet keeps three fixed-bucket histograms
(per-chunk QoE, total rebuffer seconds, session mean bitrate) built on
:class:`repro.core.histmerge.FixedBucketHistogram` — the same primitive
behind the cluster ``/metrics`` merge — so shard results merge
*losslessly*: merged bucket counts (and hence quantiles) equal what one
shared histogram would have observed, however the sessions were
partitioned.  Per-shard float sums are ``math.fsum``-exact, so for a
*fixed* shard partition the merged sums do not depend on who ran the
shards — which is what lets the determinism test demand bit-identical
fleet results for 1 vs N workers.

Bucket bounds are module constants shared by every producer, a merge
precondition.  Empty fleets produce well-formed empty aggregates (zero
counts, empty quantiles) rather than raising.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.histmerge import FixedBucketHistogram

__all__ = [
    "QOE_PER_CHUNK_BOUNDS",
    "REBUFFER_BOUNDS_S",
    "BITRATE_BOUNDS_KBPS",
    "ArmAggregate",
    "FleetResult",
]

#: Per-chunk QoE (Eq. 5 total / chunk count).  With the paper's ladders
#: the per-chunk quality term tops out near 4300 kbps; heavy rebuffering
#: under mu=6000 drives sessions far negative, hence the wide left tail.
QOE_PER_CHUNK_BOUNDS = tuple(float(-6000 + 250 * i) for i in range(39))

#: Total rebuffer seconds per session; geometric, since most sessions
#: stall 0 s (the underflow bucket) and the tail is long.
REBUFFER_BOUNDS_S = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Session mean bitrate; 100-kbps bins spanning every named ladder.
BITRATE_BOUNDS_KBPS = tuple(float(100 * i) for i in range(1, 46))

_METRICS = ("qoe_per_chunk", "rebuffer_s", "mean_bitrate_kbps")
_BOUNDS = {
    "qoe_per_chunk": QOE_PER_CHUNK_BOUNDS,
    "rebuffer_s": REBUFFER_BOUNDS_S,
    "mean_bitrate_kbps": BITRATE_BOUNDS_KBPS,
}


class ArmAggregate:
    """Histogrammed population metrics for one scenario-space arm."""

    __slots__ = ("sessions", "qoe_per_chunk", "rebuffer_s", "mean_bitrate_kbps")

    def __init__(self) -> None:
        self.sessions = 0
        self.qoe_per_chunk = FixedBucketHistogram(QOE_PER_CHUNK_BOUNDS)
        self.rebuffer_s = FixedBucketHistogram(REBUFFER_BOUNDS_S)
        self.mean_bitrate_kbps = FixedBucketHistogram(BITRATE_BOUNDS_KBPS)

    def observe_sessions(
        self,
        qoe_per_chunk: Sequence[float],
        rebuffer_s: Sequence[float],
        mean_bitrate_kbps: Sequence[float],
    ) -> None:
        if not (len(qoe_per_chunk) == len(rebuffer_s) == len(mean_bitrate_kbps)):
            raise ValueError("per-session metric sequences must align")
        self.sessions += len(qoe_per_chunk)
        self.qoe_per_chunk.observe_many(qoe_per_chunk)
        self.rebuffer_s.observe_many(rebuffer_s)
        self.mean_bitrate_kbps.observe_many(mean_bitrate_kbps)

    def merge(self, other: "ArmAggregate") -> None:
        self.sessions += other.sessions
        self.qoe_per_chunk.merge(other.qoe_per_chunk)
        self.rebuffer_s.merge(other.rebuffer_s)
        self.mean_bitrate_kbps.merge(other.mean_bitrate_kbps)

    def to_dict(self) -> dict:
        return {
            "sessions": self.sessions,
            "qoe_per_chunk": self.qoe_per_chunk.to_dict(),
            "rebuffer_s": self.rebuffer_s.to_dict(),
            "mean_bitrate_kbps": self.mean_bitrate_kbps.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ArmAggregate":
        if not isinstance(payload, dict):
            raise ValueError("arm payload must be a JSON object")
        arm = cls()
        try:
            arm.sessions = int(payload["sessions"])
            for metric in _METRICS:
                histogram = FixedBucketHistogram.from_dict(payload[metric])
                if histogram.bounds != _BOUNDS[metric]:
                    raise ValueError(f"{metric} bucket bounds do not match")
                setattr(arm, metric, histogram)
        except KeyError as exc:
            raise ValueError(f"malformed arm payload: missing {exc}") from None
        return arm

    def qoe_percentiles(self) -> Dict[str, float]:
        """The population QoE summary recorded in BENCH_fleet.json."""
        h = self.qoe_per_chunk
        return {
            "p5": h.quantile(0.05),
            "p25": h.quantile(0.25),
            "p50": h.quantile(0.50),
            "p75": h.quantile(0.75),
            "p95": h.quantile(0.95),
        }


class FleetResult:
    """All arms of one fleet run (or one shard of it).

    Arms are keyed ``"controller|dataset|preset|ladder"``
    (:attr:`Scenario.arm_key`).  ``merge`` folds shard results in shard
    order; every field is associative, so the outcome is independent of
    worker count.
    """

    __slots__ = ("sessions", "arms")

    def __init__(self) -> None:
        self.sessions = 0
        self.arms: Dict[str, ArmAggregate] = {}

    @classmethod
    def empty(cls) -> "FleetResult":
        return cls()

    def arm(self, key: str) -> ArmAggregate:
        """The aggregate for ``key``, created on first touch."""
        aggregate = self.arms.get(key)
        if aggregate is None:
            aggregate = self.arms[key] = ArmAggregate()
        return aggregate

    def merge(self, other: "FleetResult") -> None:
        self.sessions += other.sessions
        for key in sorted(other.arms):
            self.arm(key).merge(other.arms[key])

    def controller_rollup(self) -> Dict[str, ArmAggregate]:
        """Arms merged down to one aggregate per controller."""
        rollup: Dict[str, ArmAggregate] = {}
        for key in sorted(self.arms):
            controller = key.split("|", 1)[0]
            aggregate = rollup.get(controller)
            if aggregate is None:
                aggregate = rollup[controller] = ArmAggregate()
            aggregate.merge(self.arms[key])
        return rollup

    def to_dict(self) -> dict:
        return {
            "sessions": self.sessions,
            "arms": {key: self.arms[key].to_dict() for key in sorted(self.arms)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetResult":
        if not isinstance(payload, dict):
            raise ValueError("fleet payload must be a JSON object")
        result = cls()
        try:
            result.sessions = int(payload["sessions"])
            arms = payload["arms"]
        except KeyError as exc:
            raise ValueError(f"malformed fleet payload: missing {exc}") from None
        if not isinstance(arms, dict):
            raise ValueError("fleet payload arms must be a JSON object")
        for key in sorted(arms):
            result.arms[key] = ArmAggregate.from_dict(arms[key])
        return result
