"""repro.fleet — fleet-scale Monte Carlo over ABR sessions.

Two layers:

* the **batch session stepper** (:func:`run_batch`) advances thousands
  of sessions per call through vectorized Eq. 1–4 dynamics, exactly
  parity-equal per session to :func:`repro.sim.session.simulate_session`;
* the **fleet driver** (:func:`run_fleet`) samples seeded scenarios over
  traces × ladders × QoE presets × controllers, shards them across a
  process pool, and merges per-arm QoE/rebuffer/bitrate histograms
  losslessly.

See ``docs/fleet.md`` for the architecture and the BENCH_fleet.json
schema.
"""

from .aggregate import (
    BITRATE_BOUNDS_KBPS,
    QOE_PER_CHUNK_BOUNDS,
    REBUFFER_BOUNDS_S,
    ArmAggregate,
    FleetResult,
)
from .controllers import (
    SUPPORTED_CONTROLLERS,
    make_batch_controller,
    make_scalar_algorithm,
    supported_controllers,
)
from .driver import FleetConfig, run_fleet
from .scenarios import Scenario, ScenarioSpace, sample_scenarios
from .stepper import BatchResult, TraceBank, run_batch

__all__ = [
    "ArmAggregate",
    "BatchResult",
    "BITRATE_BOUNDS_KBPS",
    "FleetConfig",
    "FleetResult",
    "QOE_PER_CHUNK_BOUNDS",
    "REBUFFER_BOUNDS_S",
    "Scenario",
    "ScenarioSpace",
    "SUPPORTED_CONTROLLERS",
    "TraceBank",
    "make_batch_controller",
    "make_scalar_algorithm",
    "run_batch",
    "run_fleet",
    "sample_scenarios",
    "supported_controllers",
]
