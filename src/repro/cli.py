"""``repro-abr`` — command-line front end for the reproduction.

Subcommands map one-to-one onto the paper's artifacts:

* ``generate-traces`` — write a dataset of FCC/HSDPA/synthetic traces.
* ``run``             — play one algorithm over one trace (or a generated
                        one) and print the session log summary.
* ``compare``         — the Figure 8 matrix on generated datasets.
* ``figure``          — regenerate a specific figure's data
                        (fig7, fig8, fig9, fig10, fig11a..fig11d,
                        fig11e-levels, fig12a, fig12b).
* ``table1``          — FastMPC table-size report.
* ``overhead``        — the Section 7.4 CPU/memory microbenchmark.
* ``trace``           — like ``run`` but records the full structured
                        event timeline as JSONL and verifies that the
                        replayed QoE matches the live session exactly
                        (docs/observability.md).
* ``serve``           — run the asyncio ABR decision service (FastMPC
                        tables behind an HTTP boundary; docs/service.md);
                        ``--workers N`` scales it out to a supervised
                        multi-process cluster (docs/scaling.md).
* ``loadtest``        — closed-loop trace-driven load generation against
                        a running decision server.
* ``leaderboard``     — race the controller zoo through the decision
                        service: per dataset, an in-process server with
                        an equal-weight A/B experiment over the named
                        controllers, reported as a per-arm QoE table
                        (docs/controllers.md).
* ``arena``           — N players competing on one emulated bottleneck
                        with seeded churn, cross traffic, and fault
                        profiles; prints time-windowed fairness,
                        utilization, and instability plus per-cohort
                        QoE rollups (docs/fairness.md).
* ``chaos``           — run the load generator under a named fault
                        profile (injected resets, 500s, slow responses,
                        trace blackouts) and compare completion, fallback
                        rate, and QoE against a clean run.
* ``fleet``           — fleet-scale Monte Carlo: sample seeded scenarios
                        (controller x dataset x QoE preset x ladder),
                        step them through the vectorized batch simulator,
                        and print per-controller population QoE
                        percentiles (docs/fleet.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional, Sequence

from . import __version__
from .abr.registry import available, create, paper_algorithms
from .abr.base import SessionConfig
from .experiments import (
    figure7,
    figure8,
    figure9_10,
    measure_overhead,
    render_detail_series,
    render_figure7,
    render_result_set,
    render_table,
    table1,
)
from .experiments import sensitivity
from .qoe import QoEWeights
from .sim.session import simulate_session
from .emulation.harness import emulate_session
from .traces import (
    load_trace_csv,
    make_generator,
    save_dataset,
    standard_datasets,
    DATASET_NAMES,
)
from .video import envivio


def _add_common_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--traces", type=int, default=50, help="traces per dataset (default 50)"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--duration",
        type=float,
        default=320.0,
        help="trace duration in seconds (default 320)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-abr",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "persistent disk cache for FastMPC decision tables and "
            "offline-optimal bounds (default: $REPRO_CACHE_DIR)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate-traces", help="write a trace dataset to disk")
    p.add_argument("dataset", choices=DATASET_NAMES)
    p.add_argument("output_dir")
    p.add_argument("--count", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=320.0)

    p = sub.add_parser("run", help="one algorithm, one trace")
    p.add_argument("algorithm", choices=available())
    p.add_argument("--trace-file", help="CSV trace to play against")
    p.add_argument(
        "--dataset", choices=DATASET_NAMES, default="fcc",
        help="generate a trace from this dataset when no file is given",
    )
    p.add_argument("--trace-index", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", choices=("sim", "emulation"), default="sim")
    p.add_argument("--buffer", type=float, default=30.0, help="Bmax seconds")
    p.add_argument(
        "--weights",
        choices=("balanced", "avoid-instability", "avoid-rebuffering"),
        default="balanced",
    )

    p = sub.add_parser(
        "trace", help="run one session and write its event timeline as JSONL"
    )
    p.add_argument("algorithm", choices=available())
    p.add_argument(
        "--output", "-o", default="session-timeline.jsonl",
        help="JSONL timeline path (default session-timeline.jsonl)",
    )
    p.add_argument("--trace-file", help="CSV trace to play against")
    p.add_argument(
        "--dataset", choices=DATASET_NAMES, default="fcc",
        help="generate a trace from this dataset when no file is given",
    )
    p.add_argument("--trace-index", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", choices=("sim", "emulation"), default="sim")
    p.add_argument("--buffer", type=float, default=30.0, help="Bmax seconds")
    p.add_argument(
        "--weights",
        choices=("balanced", "avoid-instability", "avoid-rebuffering"),
        default="balanced",
    )

    p = sub.add_parser("compare", help="the Figure 8 matrix")
    _add_common_trace_args(p)
    p.add_argument("--backend", choices=("sim", "emulation"), default="sim")
    p.add_argument(
        "--algorithms",
        nargs="*",
        default=None,
        help=f"subset of: {', '.join(available())}",
    )
    p.add_argument(
        "--save",
        metavar="PREFIX",
        help="write one <PREFIX>-<dataset>.csv result file per dataset",
    )

    p = sub.add_parser("figure", help="regenerate one figure's data")
    p.add_argument(
        "name",
        choices=(
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11a",
            "fig11b",
            "fig11c",
            "fig11d",
            "fig11e-levels",
            "fig12a",
            "fig12b",
        ),
    )
    _add_common_trace_args(p)
    p.add_argument("--backend", choices=("sim", "emulation"), default="sim")
    p.add_argument("--svg", metavar="PATH", help="also render the figure to SVG")

    p = sub.add_parser("table1", help="FastMPC table-size report")
    p.add_argument(
        "--levels", type=int, nargs="*", default=[50, 100, 200],
        help="discretization levels (paper: 50 100 200 500)",
    )
    p.add_argument("--horizon", type=int, default=5)

    p = sub.add_parser("overhead", help="per-decision CPU/memory microbenchmark")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("serve", help="run the ABR decision service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8008, help="0 = ephemeral")
    p.add_argument(
        "--workers", type=int, default=1,
        help=(
            "worker processes; >1 runs the sharded cluster: one published"
            " mmap-backed table, SO_REUSEPORT (or a round-robin frontend),"
            " supervised restarts, aggregated /metrics (docs/scaling.md)"
        ),
    )
    p.add_argument(
        "--control-port", type=int, default=None, metavar="PORT",
        help=(
            "cluster-mode supervisor endpoint for aggregated /metrics and"
            " /healthz (default: an ephemeral port, printed at startup)"
        ),
    )
    p.add_argument(
        "--bins", type=int, default=100,
        help="buffer and throughput bins of the served table (default 100)",
    )
    p.add_argument("--horizon", type=int, default=5)
    p.add_argument("--buffer", type=float, default=30.0, help="Bmax seconds")
    p.add_argument(
        "--weights",
        choices=("balanced", "avoid-instability", "avoid-rebuffering"),
        default="balanced",
    )
    p.add_argument(
        "--no-table",
        action="store_true",
        help=(
            "start cold: serve rate-based fallback decisions (degraded=true)"
            " until a table is swapped in via POST /v1/table"
        ),
    )
    p.add_argument(
        "--lookup-budget-ms", type=float, default=5.0,
        help="table-lookup time budget before degrading to the fallback",
    )
    p.add_argument(
        "--idle-timeout", type=float, default=60.0,
        help="seconds before an idle keep-alive connection is reaped",
    )
    p.add_argument(
        "--trace", metavar="PATH", dest="trace_jsonl",
        help="stream one request-span JSONL event per request to PATH",
    )
    p.add_argument(
        "--arms", metavar="SPEC", default=None,
        help=(
            "serve an A/B experiment: comma-separated controller[=weight]"
            " arms, e.g. 'table=4,bola,bba-1=0.5'; 'table' keeps the"
            " vectorized FastMPC lookup, every other name routes its"
            " sessions to that repro.abr.registry controller"
            " (label:controller names an arm separately for A/A tests;"
            " also settable at runtime via POST /v1/experiment)"
        ),
    )
    p.add_argument(
        "--experiment-salt", default="", metavar="SALT",
        help="hashing salt for arm assignment (bump to re-randomise)",
    )

    p = sub.add_parser(
        "loadtest", help="closed-loop load test against a decision server"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8008)
    p.add_argument("--sessions", type=int, default=64, help="virtual players")
    p.add_argument("--chunks", type=int, default=65, help="decisions per session")
    p.add_argument(
        "--concurrency", type=int, default=16, help="sessions in flight"
    )
    p.add_argument(
        "--connections", type=int, default=None,
        help=(
            "TCP connection pool size (default: one per session worker);"
            " bounds wire fan-out independently of --concurrency"
        ),
    )
    p.add_argument("--dataset", choices=DATASET_NAMES, default="fcc")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=320.0, help="trace seconds")
    p.add_argument("--deadline", type=float, default=2.0, help="per-request s")
    p.add_argument(
        "--protocol", choices=("json", "binary"), default="json",
        help=(
            "wire encoding; binary coalesces concurrent sessions into"
            " multi-record frames (falls back to json against an older"
            " server)"
        ),
    )
    p.add_argument(
        "--predictors", nargs="*", default=None, metavar="NAME",
        help=(
            "route sessions round-robin over these client-side throughput"
            " predictors (repro.prediction registry names, e.g. harmonic"
            " gap-harmonic ewma); the report breaks QoE out per predictor"
        ),
    )
    p.add_argument(
        "--family", default=None, metavar="KEY",
        help=(
            "trace-family key stamped on every request so the server"
            " pools a cross-session throughput prior (json protocol only)"
        ),
    )
    p.add_argument(
        "--open-loop", action="store_true",
        help=(
            "live/low-latency arrival model: sessions arrive on a"
            " deterministic open-loop schedule instead of a closed loop"
        ),
    )
    p.add_argument(
        "--arrival-rate", type=float, default=16.0, metavar="HZ",
        help="open-loop base arrival rate in sessions/s",
    )
    p.add_argument(
        "--diurnal-amplitude", type=float, default=0.0, metavar="A",
        help="sinusoidal rate modulation in [0, 1] around the base rate",
    )
    p.add_argument(
        "--diurnal-period", type=float, default=10.0, metavar="S",
        help="period of the diurnal sinusoid in seconds",
    )
    p.add_argument(
        "--burst-at", type=float, default=None, metavar="S",
        help="inject a flash crowd at this offset into the schedule",
    )
    p.add_argument(
        "--burst-sessions", type=int, default=0,
        help="extra sessions arriving together at --burst-at",
    )
    p.add_argument("--json", metavar="PATH", help="also write the report as JSON")

    p = sub.add_parser(
        "predict-race",
        help=(
            "race throughput predictors across fault profiles: the §7.3"
            " sensitivity extension, reporting active-rate and wall-rate"
            " MAE, gap diagnostics, and the QoE each predictor earned"
        ),
    )
    p.add_argument(
        "--datasets", nargs="*", choices=DATASET_NAMES, default=None,
        help="trace datasets to pool sessions from (default: fcc hsdpa)",
    )
    p.add_argument(
        "--traces", type=int, default=4, help="traces per dataset"
    )
    p.add_argument("--seed", type=int, default=11, help="trace-generator seed")
    p.add_argument("--duration", type=float, default=320.0, help="trace seconds")
    p.add_argument(
        "--predictors", nargs="*", default=None, metavar="NAME",
        help=(
            "predictors to race (default: harmonic ewma gap-harmonic"
            " gap-ewma oracle)"
        ),
    )
    p.add_argument(
        "--profiles", nargs="*", default=None, metavar="NAME",
        help="fault profiles to race under (default: clean blackouts lossy-link)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="process pool size (results are bit-identical at any count)",
    )
    p.add_argument(
        "--bins", type=int, default=24,
        help="decision-table discretization for the FastMPC controller",
    )
    p.add_argument("--json", metavar="PATH", help="also write the table as JSON")

    p = sub.add_parser(
        "fleet", help="fleet-scale Monte Carlo over sampled scenarios"
    )
    p.add_argument(
        "--sessions", type=int, default=100_000, help="population size"
    )
    p.add_argument("--seed", type=int, default=7, help="scenario-sampler seed")
    p.add_argument(
        "--shard-size", type=int, default=4096,
        help="sessions per shard (fixed; worker count never changes results)",
    )
    p.add_argument(
        "--workers", type=int, default=1, help="shard worker processes"
    )
    p.add_argument(
        "--controllers", nargs="*", default=None,
        help="subset of the batch-steppable controllers (default: all)",
    )
    p.add_argument(
        "--datasets", nargs="*", choices=DATASET_NAMES, default=None,
        help="trace datasets to sample from (default: all three)",
    )
    p.add_argument(
        "--presets", nargs="*", default=None,
        help="QoE presets to sample from (default: all three)",
    )
    p.add_argument(
        "--ladders", nargs="*", default=None,
        help="named bitrate ladders to sample from (default: envivio)",
    )
    p.add_argument("--chunks", type=int, default=65, help="chunks per session")
    p.add_argument(
        "--traces", type=int, default=100, help="traces per dataset pool"
    )
    p.add_argument(
        "--duration", type=float, default=320.0, help="trace seconds"
    )
    p.add_argument("--trace-seed", type=int, default=0, help="trace-pool seed")
    p.add_argument(
        "--bins", type=int, default=100,
        help="FastMPC table discretization (default 100, the paper's)",
    )
    p.add_argument(
        "--engine", choices=("auto", "vector", "scalar"), default="auto",
        help="batch stepper engine (auto: vector when NumPy is available)",
    )
    p.add_argument(
        "--json", metavar="PATH", help="also write the merged aggregates as JSON"
    )

    p = sub.add_parser(
        "leaderboard",
        help=(
            "cross-controller x cross-dataset QoE leaderboard, served"
            " through an in-process decision server with an equal-weight"
            " A/B experiment over the controller zoo"
        ),
    )
    p.add_argument(
        "--controllers", nargs="*", default=None,
        help=(
            "arms to race: 'table' plus repro.abr.registry names"
            " (default: table bb bba-1 bola das-ip)"
        ),
    )
    p.add_argument(
        "--datasets", nargs="*", choices=DATASET_NAMES, default=None,
        help="trace datasets, one leaderboard block each (default: fcc hsdpa)",
    )
    p.add_argument("--sessions", type=int, default=60, help="sessions per dataset")
    p.add_argument("--chunks", type=int, default=30, help="decisions per session")
    p.add_argument("--concurrency", type=int, default=8, help="sessions in flight")
    p.add_argument("--seed", type=int, default=0, help="trace-generator seed")
    p.add_argument("--duration", type=float, default=320.0, help="trace seconds")
    p.add_argument(
        "--salt", default="leaderboard",
        help="experiment salt (fixed by default so the arm split reproduces)",
    )
    p.add_argument(
        "--bins", type=int, default=25,
        help="decision-table discretization for the 'table' arm",
    )
    p.add_argument("--json", metavar="PATH", help="also write the cells as JSON")

    p = sub.add_parser(
        "arena",
        help=(
            "N players on one shared bottleneck: seeded churn, cross"
            " traffic, fault profiles, and windowed fairness/efficiency"
            " rollups per controller cohort (docs/fairness.md)"
        ),
    )
    p.add_argument("--players", type=int, default=100, help="population size")
    p.add_argument("--seed", type=int, default=0, help="schedule seed")
    p.add_argument(
        "--mix", default="bola,fair-bola,rb",
        help=(
            "controller cohorts as 'controller[=weight]' entries"
            " (label:controller for A/A arms), e.g. 'bola=2,fair-bola'"
        ),
    )
    p.add_argument(
        "--salt", default="arena",
        help="cohort-assignment salt (fixed by default so splits reproduce)",
    )
    p.add_argument(
        "--arrivals", choices=("stagger", "poisson", "flash-crowd"),
        default="poisson", help="arrival model",
    )
    p.add_argument(
        "--mean-interarrival", type=float, default=0.5,
        help="poisson mean inter-arrival seconds",
    )
    p.add_argument(
        "--stagger", type=float, default=0.0, help="stagger step seconds"
    )
    p.add_argument(
        "--flash-crowds", type=int, default=3, help="bursts (flash-crowd mode)"
    )
    p.add_argument(
        "--flash-gap", type=float, default=60.0, help="seconds between bursts"
    )
    p.add_argument(
        "--min-watch", type=int, default=1,
        help="minimum chunks a churning player watches",
    )
    p.add_argument(
        "--max-watch", type=int, default=None,
        help=(
            "maximum chunks watched before departing; omit for no churn"
            " (everyone watches the whole video)"
        ),
    )
    p.add_argument(
        "--cross", action="append", default=None, metavar="RATE[:PERIOD[:DUTY]]",
        help=(
            "add a cross-traffic flow: constant RATE kbps, or an on/off"
            " square wave with PERIOD seconds and DUTY on-fraction;"
            " repeatable"
        ),
    )
    p.add_argument(
        "--profile", default="clean",
        help=(
            "fault profile name (clean, blackouts, lossy-link, resets,"
            " flaky-server, meltdown)"
        ),
    )
    p.add_argument("--fault-seed", type=int, default=0, help="fault RNG seed")
    p.add_argument(
        "--window", type=float, default=10.0, help="metrics window seconds"
    )
    p.add_argument(
        "--chunks", type=int, default=32, help="video length in chunks"
    )
    p.add_argument(
        "--bandwidth", type=float, default=None,
        help="constant bottleneck kbps (default: 1500 per player)",
    )
    p.add_argument(
        "--no-slow-start", action="store_true",
        help="disable per-transfer slow-start ramps (faster at scale)",
    )
    p.add_argument("--json", metavar="PATH", help="also write the rollups as JSON")

    p = sub.add_parser(
        "chaos",
        help="load test under a named fault profile, compared to a clean run",
    )
    p.add_argument(
        "profile",
        help=(
            "fault profile name (clean, blackouts, lossy-link, resets, "
            "flaky-server, meltdown)"
        ),
    )
    p.add_argument("--sessions", type=int, default=16, help="virtual players")
    p.add_argument("--chunks", type=int, default=30, help="decisions per session")
    p.add_argument("--concurrency", type=int, default=4, help="connections")
    p.add_argument("--dataset", choices=DATASET_NAMES, default="fcc")
    p.add_argument("--seed", type=int, default=0, help="traces + chaos + jitter")
    p.add_argument("--duration", type=float, default=320.0, help="trace seconds")
    p.add_argument("--deadline", type=float, default=2.0, help="per-request s")
    p.add_argument(
        "--retries", type=int, default=2,
        help="client retry attempts beyond the first (0 disables retries)",
    )
    p.add_argument(
        "--bins", type=int, default=25,
        help="decision-table discretization for the in-process server",
    )
    p.add_argument("--json", metavar="PATH", help="also write both reports as JSON")

    return parser


def _make_config(args) -> SessionConfig:
    weights = QoEWeights.preset(getattr(args, "weights", "balanced"))
    return SessionConfig(
        buffer_capacity_s=getattr(args, "buffer", 30.0), weights=weights
    )


def _cmd_generate_traces(args) -> int:
    generator = make_generator(args.dataset, seed=args.seed)
    traces = generator.generate_many(args.count, args.duration)
    paths = save_dataset(traces, args.output_dir)
    print(f"wrote {len(paths)} {args.dataset} traces to {args.output_dir}")
    return 0


def _cmd_run(args) -> int:
    manifest = envivio()
    if args.trace_file:
        trace = load_trace_csv(args.trace_file)
    else:
        generator = make_generator(args.dataset, seed=args.seed)
        trace = generator.generate(
            manifest.total_duration_s + 60.0, index=args.trace_index
        )
    algorithm = create(args.algorithm)
    config = _make_config(args)
    run = simulate_session if args.backend == "sim" else emulate_session
    session = run(algorithm, trace, manifest, config)
    print(session.metrics().describe())
    breakdown = session.qoe()
    print(
        f"QoE {breakdown.total:.1f} = quality {breakdown.quality_total:.1f}"
        f" - {breakdown.weights.switching:g} x switching {breakdown.switching_total:.1f}"
        f" - {breakdown.weights.rebuffering:g} x rebuffer {breakdown.rebuffer_seconds:.2f}s"
        f" - {breakdown.weights.startup:g} x startup {breakdown.startup_seconds:.2f}s"
    )
    return 0


def _cmd_trace(args) -> int:
    """Run one traced session, write the timeline, verify exact replay."""
    from .obs import JsonlSink, Tracer, read_timeline, replay_session

    manifest = envivio()
    if args.trace_file:
        trace = load_trace_csv(args.trace_file)
    else:
        generator = make_generator(args.dataset, seed=args.seed)
        trace = generator.generate(
            manifest.total_duration_s + 60.0, index=args.trace_index
        )
    algorithm = create(args.algorithm)
    config = _make_config(args)
    tracer = Tracer([JsonlSink(args.output)])
    run = simulate_session if args.backend == "sim" else emulate_session
    session = run(algorithm, trace, manifest, config, tracer=tracer)
    tracer.close()

    live_qoe = session.qoe().total
    replayed = replay_session(read_timeline(args.output))
    drift = replayed.mismatches()
    exact = replayed.qoe.total == live_qoe and not drift
    print(
        f"{tracer.events_emitted} events -> {args.output}"
        f" | live QoE {live_qoe:.6f}"
        f" | replayed QoE {replayed.qoe.total:.6f}"
        f" | {'exact match' if exact else 'MISMATCH'}"
    )
    for problem in drift:
        print(f"  drift: {problem}")
    return 0 if exact else 1


def _datasets_from_args(args):
    return standard_datasets(
        traces_per_dataset=args.traces, duration_s=args.duration, seed=args.seed
    )


def _cmd_compare(args) -> int:
    manifest = envivio()
    datasets = _datasets_from_args(args)
    if args.algorithms:
        algorithms = {name: create(name) for name in args.algorithms}
    else:
        algorithms = paper_algorithms()
    results = figure8(datasets, manifest, algorithms=algorithms, backend=args.backend)
    for name, rs in results.items():
        print(render_result_set(rs))
        print()
        if args.save:
            from .experiments import save_result_set_csv

            path = f"{args.save}-{name}.csv"
            save_result_set_csv(rs, path)
            print(f"saved {path}")
    return 0


def _cmd_figure(args) -> int:
    manifest = envivio()
    name = args.name
    if name == "fig7":
        datasets = _datasets_from_args(args)
        print(render_figure7(figure7(datasets)))
        return 0
    if name in ("fig8", "fig9", "fig10"):
        datasets = _datasets_from_args(args)
        results = figure8(datasets, manifest, backend=args.backend)
        if name == "fig8":
            for rs in results.values():
                print(render_result_set(rs))
                print()
            if args.svg:
                from .experiments import render_cdf_svg, save_svg

                first = next(iter(results.values()))
                save_svg(
                    render_cdf_svg(
                        {a: first.n_qoe_values(a) for a in first.algorithms()},
                        title=f"normalized QoE ({first.dataset})",
                        x_label="n-QoE",
                    ),
                    args.svg,
                )
                print(f"saved {args.svg}")
        else:
            dataset = "fcc" if name == "fig9" else "hsdpa"
            print(render_detail_series(figure9_10(results[dataset])))
        return 0
    # Sensitivity figures run on a mixed trace pool, like the paper's
    # training set "randomly picked across all datasets".
    datasets = _datasets_from_args(args)
    pool: List = []
    for traces in datasets.values():
        pool.extend(traces[: max(1, args.traces // len(datasets))])
    sweeps = {
        "fig11a": lambda: sensitivity.prediction_error_sweep(pool, manifest),
        "fig11b": lambda: sensitivity.qoe_preference_sweep(pool, manifest),
        "fig11c": lambda: sensitivity.buffer_size_sweep(pool, manifest),
        "fig11d": lambda: sensitivity.startup_time_sweep(pool, manifest),
        "fig11e-levels": lambda: sensitivity.bitrate_levels_sweep(pool, manifest),
        "fig12a": lambda: sensitivity.discretization_sweep(pool, manifest),
        "fig12b": lambda: sensitivity.horizon_sweep(pool, manifest),
    }
    sweep = sweeps[name]()
    print(sweep.describe())
    if args.svg:
        from .experiments import render_lines_svg, save_svg

        x_values = list(sweep.parameter_values)
        if not all(isinstance(v, (int, float)) for v in x_values):
            x_values = list(range(len(x_values)))
        save_svg(
            render_lines_svg(x_values, sweep.series, title=name),
            args.svg,
        )
        print(f"saved {args.svg}")
    return 0


def _cmd_table1(args) -> int:
    reports = table1(
        discretization_levels=args.levels,
        horizon=args.horizon,
        cache_dir=args.cache_dir,
    )
    rows = [
        [
            r.discretization_levels,
            r.num_entries,
            round(r.full_bytes / 1000.0, 1),
            round(r.rle_bytes / 1000.0, 1),
            round(r.compression_ratio, 3),
        ]
        for r in reports
    ]
    print(
        render_table(
            ["levels", "entries", "full kB", "RLE kB", "ratio"], rows
        )
    )
    return 0


def _cmd_overhead(args) -> int:
    from .core.fastmpc import FastMPCController

    manifest = envivio()
    trace = make_generator("fcc", seed=args.seed).generate(
        manifest.total_duration_s + 60.0
    )
    # FastMPC's table build dominates this command's start-up; thread the
    # disk cache through explicitly (as `compare` does) so repeat
    # invocations skip straight to the measurement.
    algorithms = {
        name: (
            FastMPCController(cache_dir=args.cache_dir)
            if name == "fastmpc"
            else create(name)
        )
        for name in ("rb", "bb", "festive", "dashjs", "fastmpc", "robust-mpc")
    }
    for sample in measure_overhead(algorithms, trace, manifest):
        print(sample.describe())
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .core.fastmpc import FastMPCConfig, build_decision_table
    from .service import (
        DecisionServer,
        DecisionService,
        ServiceConfig,
        parse_arms_spec,
    )

    experiment = None
    if args.arms:
        experiment = parse_arms_spec(args.arms, salt=args.experiment_salt)
    manifest = envivio()
    weights = QoEWeights.preset(args.weights)
    table = None
    if not args.no_table:
        table = build_decision_table(
            manifest.ladder.levels_kbps,
            manifest.chunk_duration_s,
            args.buffer,
            weights,
            config=FastMPCConfig(
                buffer_bins=args.bins,
                throughput_bins=args.bins,
                horizon=args.horizon,
            ),
            cache_dir=args.cache_dir,
        )
    service = DecisionService(
        manifest.ladder.levels_kbps,
        table=table,
        config=ServiceConfig(
            lookup_budget_s=args.lookup_budget_ms / 1000.0,
            idle_timeout_s=args.idle_timeout,
        ),
        experiment=experiment,
    )
    if args.workers > 1:
        return _serve_cluster(args, manifest, table, experiment)
    tracer = None
    if args.trace_jsonl:
        from .obs import JsonlSink, Tracer

        tracer = Tracer([JsonlSink(args.trace_jsonl, flush_every=1)])
    server = DecisionServer(service, args.host, args.port, tracer=tracer)

    async def _serve() -> None:
        await server.start()
        mode = "table loaded" if service.table_loaded else "COLD (fallback only)"
        if experiment is not None:
            arm_names = ",".join(arm.name for arm in experiment.arms)
            mode += f", experiment [{arm_names}]"
        print(
            f"decision service on {args.host}:{server.bound_port} [{mode}]",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if tracer is not None:
            tracer.close()
    return 0


def _serve_cluster(args, manifest, table, experiment=None) -> int:
    """``serve --workers N``: the sharded multi-process cluster."""
    import asyncio
    import tempfile
    from pathlib import Path

    from .experiments import publish_table
    from .service import ClusterConfig, ClusterSupervisor, ServiceConfig

    table_path = None
    tmpdir = None
    if table is not None:
        # Published once; every worker maps it read-only (zero copies).
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        table_path = str(Path(tmpdir.name) / "decision-table.rprotbl")
        publish_table(table, table_path)
    config = ClusterConfig(
        workers=args.workers,
        host=args.host,
        port=args.port,
        control_port=args.control_port if args.control_port is not None else 0,
        service=ServiceConfig(
            lookup_budget_s=args.lookup_budget_ms / 1000.0,
            idle_timeout_s=args.idle_timeout,
        ),
        experiment=experiment,
    )
    supervisor = ClusterSupervisor(
        manifest.ladder.levels_kbps, table_path=table_path, config=config
    )

    async def _serve() -> None:
        await supervisor.start()
        try:
            mode = "table published" if table_path else "COLD (fallback only)"
            sharding = (
                "SO_REUSEPORT" if supervisor.reuse_port else "round-robin frontend"
            )
            print(
                f"decision cluster on {args.host}:{supervisor.bound_port}"
                f" [{args.workers} workers, {sharding}, {mode}]"
                f" | control {args.host}:{supervisor.control_bound_port}",
                flush=True,
            )
            while True:  # supervised forever; ^C unwinds through finally
                await asyncio.sleep(3600)
        finally:
            await supervisor.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down cluster")
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
    return 0


def _cmd_loadtest(args) -> int:
    import json
    from pathlib import Path

    from .service import LoadTestConfig, run_loadtest_sync

    config = LoadTestConfig(
        sessions=args.sessions,
        chunks_per_session=args.chunks,
        concurrency=args.concurrency,
        connections=args.connections,
        dataset=args.dataset,
        seed=args.seed,
        trace_duration_s=args.duration,
        deadline_s=args.deadline,
        protocol=args.protocol,
        predictors=tuple(args.predictors or ()),
        family=args.family,
        open_loop=args.open_loop,
        arrival_rate_hz=args.arrival_rate,
        diurnal_amplitude=args.diurnal_amplitude,
        diurnal_period_s=args.diurnal_period,
        burst_at_s=args.burst_at,
        burst_sessions=args.burst_sessions,
    )
    report = run_loadtest_sync(args.host, args.port, config)
    print(report.describe())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"saved {args.json}")
    return 1 if report.errors else 0


def _cmd_predict_race(args) -> int:
    """Race predictors across fault profiles (§7.3 extension)."""
    import json
    from pathlib import Path

    from .core.fastmpc import FastMPCConfig
    from .experiments import (
        PREDICTOR_RACE_PREDICTORS,
        PREDICTOR_RACE_PROFILES,
        run_predictor_race,
    )

    datasets = tuple(args.datasets or ("fcc", "hsdpa"))
    manifest = envivio()
    traces = []
    for dataset in datasets:
        generator = make_generator(dataset, seed=args.seed)
        traces.extend(generator.generate_many(args.traces, args.duration))
    result = run_predictor_race(
        traces,
        manifest,
        predictors=tuple(args.predictors or PREDICTOR_RACE_PREDICTORS),
        profiles=tuple(args.profiles or PREDICTOR_RACE_PROFILES),
        config=FastMPCConfig(
            buffer_bins=args.bins, throughput_bins=args.bins, horizon=5
        ),
        workers=args.workers,
    )
    print(result.table())
    print(
        f"{len(traces)} trace(s) from {'+'.join(datasets)}"
        f" x {len(result.profiles)} profile(s)"
        f" x {len(result.predictors)} predictor(s)"
        f" (seed {args.seed}, workers {args.workers})"
    )
    if args.json:
        Path(args.json).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"saved {args.json}")
    return 0


def _cmd_leaderboard(args) -> int:
    """Cross-controller x cross-dataset QoE leaderboard via the service."""
    import json
    from pathlib import Path

    from .experiments import (
        DEFAULT_LEADERBOARD_CONTROLLERS,
        LeaderboardConfig,
        run_leaderboard,
    )

    config = LeaderboardConfig(
        controllers=tuple(args.controllers or DEFAULT_LEADERBOARD_CONTROLLERS),
        datasets=tuple(args.datasets or ("fcc", "hsdpa")),
        sessions=args.sessions,
        chunks_per_session=args.chunks,
        concurrency=args.concurrency,
        seed=args.seed,
        trace_duration_s=args.duration,
        salt=args.salt,
        bins=args.bins,
        cache_dir=args.cache_dir,
    )
    result = run_leaderboard(config)
    print(result.render())
    served = sum(cell.sessions for cell in result.cells)
    print(
        f"{served} sessions over {len(config.datasets)} dataset(s) x"
        f" {len(config.controllers)} arm(s) in {result.wall_s:.1f}s"
        f" (salt {config.salt!r}, seed {config.seed}, errors {result.errors})"
    )
    empty = sorted(
        {cell.arm for cell in result.cells if cell.sessions == 0}
    )
    if empty:
        print(
            f"warning: arms with zero sessions at this population: {empty}"
            " — raise --sessions or change --salt"
        )
    if args.json:
        Path(args.json).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"saved {args.json}")
    return 1 if result.errors else 0


def _cmd_chaos(args) -> int:
    """In-process chaos run: clean baseline, then the same workload under
    the profile's trace faults + server chaos, and the delta between them.

    Both runs use the same generated traces, table, and load shape; the
    only differences are the compiled-in bandwidth faults on the players'
    traces and the chaos policy on the server — so every gap in the
    comparison is attributable to the injected faults.
    """
    import asyncio
    import json
    from pathlib import Path

    from .core.fastmpc import FastMPCConfig, build_decision_table
    from .faults import ChaosPolicy, apply_trace_faults, get_profile
    from .service import (
        DecisionServer,
        DecisionService,
        LoadTestConfig,
        RetryPolicy,
        run_loadtest,
    )

    profile = get_profile(args.profile).with_seed(args.seed)
    manifest = envivio()
    table = build_decision_table(
        manifest.ladder.levels_kbps,
        manifest.chunk_duration_s,
        30.0,
        QoEWeights.balanced(),
        config=FastMPCConfig(
            buffer_bins=args.bins, throughput_bins=args.bins, horizon=5
        ),
        cache_dir=args.cache_dir,
    )
    retry = (
        RetryPolicy(
            max_attempts=args.retries + 1,
            base_delay_s=0.02,
            max_delay_s=0.25,
            budget_s=args.deadline,
            seed=args.seed,
        )
        if args.retries > 0
        else None
    )
    config = LoadTestConfig(
        sessions=args.sessions,
        chunks_per_session=args.chunks,
        concurrency=args.concurrency,
        dataset=args.dataset,
        seed=args.seed,
        trace_duration_s=args.duration,
        deadline_s=args.deadline,
        retry=retry,
    )
    traces = make_generator(args.dataset, seed=args.seed).generate_many(
        args.sessions, args.duration
    )
    faulted = [apply_trace_faults(t, profile.trace_faults) for t in traces]

    async def run_one(chaos_policy, trace_list):
        service = DecisionService(manifest.ladder.levels_kbps, table=table)
        server = DecisionServer(service, "127.0.0.1", 0, chaos=chaos_policy)
        await server.start()
        try:
            report = await run_loadtest(
                "127.0.0.1", server.bound_port, config, traces=trace_list
            )
            return report, service.metrics.snapshot()
        finally:
            await server.close()

    clean_report, _ = asyncio.run(run_one(None, traces))
    policy = ChaosPolicy(profile.chaos) if profile.chaos.any_enabled else None
    chaos_report, server_metrics = asyncio.run(run_one(policy, faulted))

    completion = chaos_report.sessions_completed / args.sessions
    fallback_decisions = chaos_report.local_fallbacks + chaos_report.degraded
    fallback_rate = (
        fallback_decisions / chaos_report.decisions if chaos_report.decisions else 0.0
    )
    qoe_delta = chaos_report.qoe_mean - clean_report.qoe_mean

    print(f"profile {profile.name!r}: {profile.description}")
    print(f"--- clean ---\n{clean_report.describe()}")
    print(f"--- {profile.name} ---\n{chaos_report.describe()}")
    print(
        f"completion {chaos_report.sessions_completed}/{args.sessions}"
        f" ({completion:.0%}) | fallback rate {fallback_rate:.1%}"
        f" | QoE delta {qoe_delta:+.1f} vs clean"
    )
    injected = server_metrics.get("chaos_injected", {})
    if injected:
        print(f"injected by server: {injected}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {
                    "profile": profile.name,
                    "seed": args.seed,
                    "clean": clean_report.to_dict(),
                    "chaos": chaos_report.to_dict(),
                    "chaos_injected": injected,
                    "completion_rate": completion,
                    "fallback_rate": fallback_rate,
                    "qoe_delta": qoe_delta,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"saved {args.json}")
    # The acceptance bar: every session rides out the faults.
    return 0 if chaos_report.sessions_completed == args.sessions else 1


def _cmd_fleet(args) -> int:
    import json
    import time
    from pathlib import Path

    from .core.fastmpc import FastMPCConfig
    from .fleet import FleetConfig, ScenarioSpace, run_fleet
    from .fleet.scenarios import LADDER_NAMES, PRESET_NAMES
    from .fleet.controllers import SUPPORTED_CONTROLLERS

    space = ScenarioSpace(
        controllers=tuple(args.controllers or SUPPORTED_CONTROLLERS),
        datasets=tuple(args.datasets or DATASET_NAMES),
        presets=tuple(args.presets or PRESET_NAMES),
        ladders=tuple(args.ladders or ("envivio",)),
        num_chunks=args.chunks,
        traces_per_dataset=args.traces,
        trace_duration_s=args.duration,
        trace_seed=args.trace_seed,
        table_config=FastMPCConfig(
            buffer_bins=args.bins, throughput_bins=args.bins, horizon=5
        ),
    )
    config = FleetConfig(
        sessions=args.sessions,
        seed=args.seed,
        shard_size=args.shard_size,
        space=space,
        cache_dir=args.cache_dir,
        engine=args.engine,
    )
    t0 = time.perf_counter()
    result = run_fleet(config, workers=args.workers)
    wall_s = time.perf_counter() - t0
    rate = result.sessions / wall_s if wall_s > 0 else 0.0

    rows = []
    for name, arm in sorted(result.controller_rollup().items()):
        pct = arm.qoe_percentiles()
        rows.append(
            [
                name,
                arm.sessions,
                round(pct["p5"], 1),
                round(pct["p50"], 1),
                round(pct["p95"], 1),
                round(arm.rebuffer_s.mean, 2),
                round(arm.mean_bitrate_kbps.mean, 0),
            ]
        )
    print(
        render_table(
            [
                "controller",
                "sessions",
                "QoE/chunk p5",
                "p50",
                "p95",
                "rebuf mean s",
                "bitrate kbps",
            ],
            rows,
        )
    )
    print(
        f"{result.sessions} sessions in {wall_s:.1f}s"
        f" ({rate:.0f} sessions/s, {args.workers} workers,"
        f" {len(result.arms)} arms, seed {args.seed})"
    )
    if args.json:
        payload = {
            "sessions": result.sessions,
            "seed": args.seed,
            "shard_size": args.shard_size,
            "workers": args.workers,
            "wall_s": wall_s,
            "sessions_per_s": rate,
            "ladders": sorted(set(space.ladders) & set(LADDER_NAMES)),
            "result": result.to_dict(),
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"saved {args.json}")
    return 0


def _parse_cross_flows(specs):
    """``RATE[:PERIOD[:DUTY]]`` strings into :class:`CrossTrafficSpec`."""
    from .arena import CrossTrafficSpec

    flows = []
    for i, raw in enumerate(specs or ()):
        parts = raw.split(":")
        if not 1 <= len(parts) <= 3:
            raise SystemExit(f"bad --cross spec {raw!r}: RATE[:PERIOD[:DUTY]]")
        try:
            rate = float(parts[0])
            period = float(parts[1]) if len(parts) > 1 else None
            duty = float(parts[2]) if len(parts) > 2 else 0.5
        except ValueError:
            raise SystemExit(f"bad --cross spec {raw!r}: RATE[:PERIOD[:DUTY]]")
        flows.append(
            CrossTrafficSpec(
                label=f"cross{i}",
                rate_kbps=rate,
                period_s=period,
                duty=duty if period is not None else 1.0,
            )
        )
    return tuple(flows)


def _cmd_arena(args) -> int:
    import json
    from pathlib import Path

    from .arena import ArenaConfig, ScheduleConfig, run_arena
    from .emulation.harness import NetworkProfile
    from .service import parse_arms_spec
    from .traces import Trace

    manifest = envivio()
    if args.chunks < manifest.num_chunks:
        manifest = manifest.truncated(args.chunks)
    bandwidth = (
        args.bandwidth if args.bandwidth is not None else 1500.0 * args.players
    )
    # Long enough that even a heavily contended run never wraps awkwardly;
    # the trace repeats anyway if it does.
    trace = Trace.constant(
        bandwidth, 600.0, name=f"arena-const-{bandwidth:g}"
    )
    schedule = ScheduleConfig(
        players=args.players,
        seed=args.seed,
        mix=parse_arms_spec(args.mix, salt=args.salt),
        arrivals=args.arrivals,
        mean_interarrival_s=args.mean_interarrival,
        stagger_s=args.stagger,
        flash_crowds=args.flash_crowds,
        flash_gap_s=args.flash_gap,
        min_watch_chunks=args.min_watch,
        max_watch_chunks=args.max_watch,
        cross_traffic=_parse_cross_flows(args.cross),
    )
    config = ArenaConfig(
        schedule=schedule,
        trace=trace,
        manifest=manifest,
        network=NetworkProfile(slow_start=not args.no_slow_start),
        profile=args.profile,
        fault_seed=args.fault_seed,
        window_s=args.window,
    )
    result = run_arena(config)

    totals = result.totals
    fmt = lambda v, spec=".4f": "-" if v is None else format(v, spec)
    print(
        f"{result.num_players} players, {totals.duration_s:.1f}s,"
        f" profile {args.profile}, {args.arrivals} arrivals"
    )
    print(
        f"whole run: jain {fmt(totals.jain)}"
        f"  unfairness {fmt(totals.unfairness)}"
        f"  utilization {fmt(totals.utilization)}"
        f" (video {fmt(totals.video_utilization)})"
        f"  switches {totals.switches}"
    )
    rows = [
        [
            f"{w.t0_s:.0f}-{w.t1_s:.0f}s",
            w.active_players,
            fmt(w.jain),
            fmt(w.utilization),
            w.switches,
            fmt(w.instability, ".3f"),
        ]
        for w in result.windows
    ]
    print(
        render_table(
            ["window", "players", "jain", "util", "switches", "instab"], rows
        )
    )
    rows = []
    for arm in sorted(result.cohorts):
        rollup = result.cohorts[arm]
        rows.append(
            [
                arm,
                rollup.sessions,
                rollup.departed,
                round(rollup.mean_qoe, 1),
                round(rollup.mean_rebuffer_s, 2),
                round(rollup.mean_bitrate_kbps, 0),
                rollup.switches,
            ]
        )
    print(
        render_table(
            [
                "cohort",
                "sessions",
                "departed",
                "mean QoE",
                "rebuf mean s",
                "bitrate kbps",
                "switches",
            ],
            rows,
        )
    )
    if result.cross_kilobits:
        shares = ", ".join(
            f"{label} {kb:.0f} kb" for label, kb in result.cross_kilobits.items()
        )
        print(f"cross traffic: {shares}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"saved {args.json}")
    return 0


_COMMANDS = {
    "generate-traces": _cmd_generate_traces,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "table1": _cmd_table1,
    "overhead": _cmd_overhead,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "predict-race": _cmd_predict_race,
    "leaderboard": _cmd_leaderboard,
    "arena": _cmd_arena,
    "chaos": _cmd_chaos,
    "fleet": _cmd_fleet,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "cache_dir", None):
        # Exported rather than threaded through every command: everything
        # that caches (table builds, offline bounds) reads this variable
        # as its default, including experiment pool workers on spawn.
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
