"""HSDPA-mobile-like throughput trace generator.

The paper's cellular workload is the Telenor 3G/HSDPA dataset [10]:
continuous 1-second throughput logs collected from devices moving through
Norway (bus, tram, ferry, train, car).  It is the paper's high-variability
stress case: Figure 7 shows per-session prediction error reaching 40%
worst case, with the harmonic-mean predictor over-estimating more than 20%
of the time.

As with the FCC data we cannot ship the measurement files, so this module
generates statistically matched traces (DESIGN.md, substitution table):

* 1-second sampling,
* strong regime switching — the device moves between good coverage, urban
  shadowing, and near-outage stretches (tunnels, cuttings),
* within-regime fading noise with heavy relative variance, and
* overall means mostly in the 0.3–3 Mbps band, with std frequently a large
  fraction of the mean.

The model is a semi-Markov regime process (dwell times geometric, in
seconds) with lognormal fading around each regime mean and occasional hard
outages.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .trace import Trace

__all__ = ["HSDPARegime", "HSDPATraceGenerator"]


@dataclass(frozen=True)
class HSDPARegime:
    """One mobility/coverage regime."""

    name: str
    mean_kbps: float
    fading_sigma: float  # sigma of the lognormal multiplicative fading
    mean_dwell_s: float


# Calibrated against the paper's Figure 7: per-session average absolute
# harmonic-mean prediction error centred near ~20-25% with a tail past
# 40%, session means mostly 0.5-2.5 Mbps, std a large fraction of mean.
_DEFAULT_REGIMES = (
    HSDPARegime("good", 2300.0, 0.10, 50.0),
    HSDPARegime("urban", 1400.0, 0.15, 40.0),
    HSDPARegime("weak", 750.0, 0.18, 30.0),
    HSDPARegime("outage", 330.0, 0.22, 12.0),
)

# Row-stochastic transitions between regimes at dwell expiry.
_DEFAULT_TRANSITIONS = (
    (0.00, 0.70, 0.25, 0.05),
    (0.45, 0.00, 0.45, 0.10),
    (0.25, 0.45, 0.00, 0.30),
    (0.15, 0.35, 0.50, 0.00),
)


class HSDPATraceGenerator:
    """Seeded generator of HSDPA-like (highly variable mobile) traces."""

    dataset_name = "hsdpa"
    sample_interval_s = 1.0

    def __init__(
        self,
        seed: int = 0,
        regimes: Optional[Sequence[HSDPARegime]] = None,
        transitions: Optional[Sequence[Sequence[float]]] = None,
        session_scale_low: float = 0.55,
        session_scale_high: float = 1.3,
        floor_kbps: float = 20.0,
    ) -> None:
        self.regimes = list(regimes) if regimes is not None else list(_DEFAULT_REGIMES)
        transitions = transitions if transitions is not None else _DEFAULT_TRANSITIONS
        self.transitions = [list(map(float, row)) for row in transitions]
        n = len(self.regimes)
        if len(self.transitions) != n or any(len(row) != n for row in self.transitions):
            raise ValueError("transition matrix shape must match regimes")
        for i, row in enumerate(self.transitions):
            if any(p < 0 for p in row) or abs(sum(row) - 1.0) > 1e-9:
                raise ValueError(f"transition row {i} is not a distribution")
        if not (0 < session_scale_low <= session_scale_high):
            raise ValueError("invalid session scale bounds")
        self.session_scale_low = session_scale_low
        self.session_scale_high = session_scale_high
        self.floor_kbps = floor_kbps
        self.seed = seed

    def _pick_transition(self, rng: random.Random, current: int) -> int:
        u = rng.random()
        acc = 0.0
        for j, p in enumerate(self.transitions[current]):
            acc += p
            if u <= acc:
                return j
        return len(self.transitions[current]) - 1

    def generate(self, duration_s: float, index: int = 0) -> Trace:
        """Generate one HSDPA-like trace of at least ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = random.Random(f"{self.seed}-hsdpa-{index}")
        # Per-session scale models device/route diversity across sessions.
        session_scale = rng.uniform(self.session_scale_low, self.session_scale_high)
        regime_idx = rng.randrange(len(self.regimes))
        n = int(math.ceil(duration_s / self.sample_interval_s))
        samples: List[float] = []
        dwell_left = self._draw_dwell(rng, regime_idx)
        for _ in range(n):
            regime = self.regimes[regime_idx]
            fading = math.exp(rng.gauss(-0.5 * regime.fading_sigma**2, regime.fading_sigma))
            value = session_scale * regime.mean_kbps * fading
            samples.append(max(value, self.floor_kbps))
            dwell_left -= self.sample_interval_s
            if dwell_left <= 0:
                regime_idx = self._pick_transition(rng, regime_idx)
                dwell_left = self._draw_dwell(rng, regime_idx)
        return Trace.from_samples(
            samples, self.sample_interval_s, name=f"{self.dataset_name}-{index:04d}"
        )

    def _draw_dwell(self, rng: random.Random, regime_idx: int) -> float:
        mean_dwell = self.regimes[regime_idx].mean_dwell_s
        return max(self.sample_interval_s, rng.expovariate(1.0 / mean_dwell))

    def generate_many(self, count: int, duration_s: float, start_index: int = 0) -> List[Trace]:
        return [self.generate(duration_s, index=start_index + i) for i in range(count)]
