"""Fitting the hidden-Markov synthetic generator to measured traces.

Section 7.1.1's synthetic dataset is parameterised by a state set, the
per-state Gaussian (``m_s``, ``sigma_s``), and the transition matrix —
"we vary both ... to generate traces".  This module estimates all three
from measured traces, closing the loop for users who *do* hold real
datasets: fit once, then generate unlimited statistically matched traces
with :class:`~repro.traces.synthetic.SyntheticTraceGenerator`.

Estimation is deliberately simple and robust:

* states are quantile bins of the pooled sample distribution (equal
  occupancy, so every state is well estimated),
* ``m_s`` / ``sigma_s`` are the within-bin sample mean and standard
  deviation,
* transitions are Laplace-smoothed counts of consecutive-sample bin
  moves, estimated per trace and pooled (no transitions across trace
  boundaries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .synthetic import MarkovState, SyntheticTraceGenerator
from .trace import Trace

__all__ = ["MarkovFit", "fit_markov_model"]


@dataclass(frozen=True)
class MarkovFit:
    """The estimated hidden-Markov throughput model."""

    states: Tuple[MarkovState, ...]
    transition_matrix: Tuple[Tuple[float, ...], ...]
    bin_edges: Tuple[float, ...]  # len(states) - 1 interior edges
    sample_interval_s: float
    num_samples: int

    def state_of(self, throughput_kbps: float) -> int:
        """Bin index of one throughput sample."""
        for i, edge in enumerate(self.bin_edges):
            if throughput_kbps < edge:
                return i
        return len(self.states) - 1

    def stationary_distribution(self, iterations: int = 500) -> List[float]:
        """Power-iterated stationary distribution of the fitted chain."""
        n = len(self.states)
        dist = [1.0 / n] * n
        for _ in range(iterations):
            nxt = [0.0] * n
            for i, p_i in enumerate(dist):
                for j in range(n):
                    nxt[j] += p_i * self.transition_matrix[i][j]
            dist = nxt
        return dist

    def mean_kbps(self) -> float:
        """Stationary mean throughput implied by the fit."""
        dist = self.stationary_distribution()
        return sum(p * s.mean_kbps for p, s in zip(dist, self.states))

    def to_generator(self, seed: int = 0) -> SyntheticTraceGenerator:
        """A seeded generator producing traces from the fitted model."""
        return SyntheticTraceGenerator(
            states=list(self.states),
            transition_matrix=[list(row) for row in self.transition_matrix],
            sample_interval_s=self.sample_interval_s,
            seed=seed,
        )


def _quantile_edges(samples: Sequence[float], num_states: int) -> List[float]:
    ordered = sorted(samples)
    edges = []
    for k in range(1, num_states):
        pos = k * len(ordered) // num_states
        edges.append(ordered[min(pos, len(ordered) - 1)])
    # Degenerate (duplicate) edges can appear on flat data; nudge them.
    for i in range(1, len(edges)):
        if edges[i] <= edges[i - 1]:
            edges[i] = edges[i - 1] * (1 + 1e-9) + 1e-9
    return edges


def fit_markov_model(
    traces: Sequence[Trace],
    num_states: int = 6,
    smoothing: float = 0.5,
) -> MarkovFit:
    """Estimate states, emissions, and transitions from measured traces.

    Parameters
    ----------
    traces:
        Measured traces; samples are taken at each trace's own segment
        granularity.  The fitted ``sample_interval_s`` is the median
        segment length across the pool.
    num_states:
        Number of hidden states (quantile bins).
    smoothing:
        Laplace pseudo-count added to every transition cell.
    """
    if not traces:
        raise ValueError("need at least one trace to fit")
    if num_states < 2:
        raise ValueError("need at least two states")
    if smoothing <= 0:
        raise ValueError("smoothing must be positive")

    pooled: List[float] = []
    intervals: List[float] = []
    per_trace_samples: List[List[float]] = []
    for trace in traces:
        samples = list(trace.bandwidths_kbps)
        if len(samples) < 2:
            raise ValueError("each trace needs at least two samples")
        per_trace_samples.append(samples)
        pooled.extend(samples)
        intervals.extend(trace.segment_durations())
    if len(set(pooled)) < num_states:
        raise ValueError(
            f"only {len(set(pooled))} distinct throughput values; "
            f"cannot fit {num_states} states"
        )
    edges = _quantile_edges(pooled, num_states)

    def state_of(value: float) -> int:
        for i, edge in enumerate(edges):
            if value < edge:
                return i
        return num_states - 1

    # Emissions.
    by_state: List[List[float]] = [[] for _ in range(num_states)]
    for value in pooled:
        by_state[state_of(value)].append(value)
    states: List[MarkovState] = []
    for bucket in by_state:
        if not bucket:
            raise ValueError("empty state bucket; reduce num_states")
        mean = sum(bucket) / len(bucket)
        var = sum((v - mean) ** 2 for v in bucket) / max(len(bucket) - 1, 1)
        states.append(MarkovState(mean_kbps=mean, std_kbps=math.sqrt(var)))

    # Transitions, pooled over traces (no cross-trace transitions).
    counts = [[smoothing] * num_states for _ in range(num_states)]
    for samples in per_trace_samples:
        previous = state_of(samples[0])
        for value in samples[1:]:
            current = state_of(value)
            counts[previous][current] += 1.0
            previous = current
    matrix = tuple(
        tuple(c / sum(row) for c in row) for row in (tuple(r) for r in counts)
    )

    intervals.sort()
    sample_interval = intervals[len(intervals) // 2]
    return MarkovFit(
        states=tuple(states),
        transition_matrix=matrix,
        bin_edges=tuple(edges),
        sample_interval_s=sample_interval,
        num_samples=len(pooled),
    )
