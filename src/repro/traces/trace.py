"""Piecewise-constant throughput traces.

A :class:`Trace` models network throughput as a piecewise-constant function
of time, exactly as the datasets used in the paper do: the FCC broadband
dataset reports one average throughput per 5-second interval, the HSDPA
mobile dataset one sample per second, and the synthetic dataset one sample
per hidden-state dwell period.

The two operations the streaming model needs (Section 3.1 of the paper) are

* the *integral* of throughput over a time window, which gives the number
  of kilobits deliverable in that window (Eq. 2 of the paper relates the
  average download speed ``C_k`` to this integral), and

* its *inverse*: given a chunk of ``d_k(R_k)`` kilobits starting to download
  at time ``t_k``, the time at which the download completes.

Both are exact here (no numeric quadrature): segments are walked directly.

Units used throughout the package:

* time — seconds,
* throughput — kbps (kilobits per second),
* data sizes — kilobits.

Traces wrap around when a session outlives them, which matches how the
paper concatenates FCC measurement sets "to match the length of the video".
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

__all__ = ["Trace", "TraceStats"]

_EPS = 1e-12


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace, as plotted in Figure 7 of the paper."""

    mean_kbps: float
    std_kbps: float
    min_kbps: float
    max_kbps: float
    duration_s: float
    num_segments: int

    def coefficient_of_variation(self) -> float:
        """Std/mean; the paper's notion of throughput (in)stability."""
        if self.mean_kbps <= 0:
            return 0.0
        return self.std_kbps / self.mean_kbps


class Trace:
    """A piecewise-constant throughput trace.

    Parameters
    ----------
    timestamps:
        Strictly increasing segment start times in seconds.  The first
        timestamp must be ``0.0``.
    bandwidths_kbps:
        Throughput holding on ``[timestamps[i], timestamps[i+1])``; the last
        value holds until ``duration_s``.
    duration_s:
        Total trace length.  Defaults to the last timestamp plus the median
        segment length (or 1 s for a single-segment trace).
    name:
        Optional label used in reports (e.g. ``"fcc-0042"``).
    """

    __slots__ = ("_times", "_bw", "_duration", "name")

    def __init__(
        self,
        timestamps: Sequence[float],
        bandwidths_kbps: Sequence[float],
        duration_s: float | None = None,
        name: str = "",
    ) -> None:
        if len(timestamps) != len(bandwidths_kbps):
            raise ValueError(
                "timestamps and bandwidths must have equal length "
                f"({len(timestamps)} != {len(bandwidths_kbps)})"
            )
        if not timestamps:
            raise ValueError("a trace needs at least one segment")
        if abs(timestamps[0]) > _EPS:
            raise ValueError(f"first timestamp must be 0.0, got {timestamps[0]}")
        times = [float(t) for t in timestamps]
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise ValueError("timestamps must be strictly increasing")
        bws = [float(b) for b in bandwidths_kbps]
        for bw in bws:
            if bw < 0 or math.isnan(bw) or math.isinf(bw):
                raise ValueError(f"bandwidth values must be finite and >= 0, got {bw}")
        if duration_s is None:
            if len(times) > 1:
                gaps = sorted(b - a for a, b in zip(times, times[1:]))
                median_gap = gaps[len(gaps) // 2]
                duration_s = times[-1] + median_gap
            else:
                duration_s = times[-1] + 1.0
        if duration_s <= times[-1]:
            raise ValueError(
                f"duration {duration_s} must exceed the last timestamp {times[-1]}"
            )
        object.__setattr__(self, "_times", times)
        object.__setattr__(self, "_bw", bws)
        object.__setattr__(self, "_duration", float(duration_s))
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):  # pragma: no cover - defensive
        raise AttributeError("Trace instances are immutable")

    def __getstate__(self):
        """Pickle support (the frozen ``__setattr__`` blocks the default
        slot-restoring path used by multiprocessing workers)."""
        return (self._times, self._bw, self._duration, self.name)

    def __setstate__(self, state):
        times, bw, duration, name = state
        object.__setattr__(self, "_times", times)
        object.__setattr__(self, "_bw", bw)
        object.__setattr__(self, "_duration", duration)
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, bandwidth_kbps: float, duration_s: float, name: str = "") -> "Trace":
        """A trace with a single constant-throughput segment."""
        return cls([0.0], [bandwidth_kbps], duration_s=duration_s, name=name)

    @classmethod
    def from_samples(
        cls,
        bandwidths_kbps: Sequence[float],
        interval_s: float,
        name: str = "",
    ) -> "Trace":
        """Build from regularly spaced samples (the dataset formats).

        The FCC dataset is ``interval_s=5``; HSDPA is ``interval_s=1``.
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        times = [i * interval_s for i in range(len(bandwidths_kbps))]
        return cls(
            times,
            bandwidths_kbps,
            duration_s=len(bandwidths_kbps) * interval_s,
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        return self._duration

    @property
    def timestamps(self) -> Tuple[float, ...]:
        return tuple(self._times)

    @property
    def bandwidths_kbps(self) -> Tuple[float, ...]:
        return tuple(self._bw)

    def __len__(self) -> int:
        return len(self._times)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Trace{label} segments={len(self)} duration={self._duration:.1f}s "
            f"mean={self.mean_kbps():.0f}kbps>"
        )

    def segment_durations(self) -> List[float]:
        """Length of each piecewise-constant segment in seconds."""
        out = []
        for a, b in zip(self._times, self._times[1:]):
            out.append(b - a)
        out.append(self._duration - self._times[-1])
        return out

    def bandwidth_at(self, t: float) -> float:
        """Instantaneous throughput ``C_t`` at wall time ``t`` (wraps)."""
        t = self._wrap(t)
        idx = bisect.bisect_right(self._times, t) - 1
        return self._bw[idx]

    def _wrap(self, t: float) -> float:
        if t < 0:
            raise ValueError(f"time must be >= 0, got {t}")
        if t < self._duration:
            return t
        return t % self._duration

    # ------------------------------------------------------------------
    # Integration — the heart of Eq. (1)/(2) of the paper
    # ------------------------------------------------------------------

    def _kilobits_one_pass(self, t0: float, t1: float) -> float:
        """Integral over ``[t0, t1]`` with both endpoints inside the trace."""
        total = 0.0
        idx = bisect.bisect_right(self._times, t0) - 1
        t = t0
        while t < t1 - _EPS:
            seg_end = self._times[idx + 1] if idx + 1 < len(self._times) else self._duration
            upto = min(seg_end, t1)
            total += self._bw[idx] * (upto - t)
            t = upto
            idx += 1
        return total

    def kilobits_between(self, t0: float, t1: float) -> float:
        """Kilobits deliverable between wall times ``t0`` and ``t1``.

        Handles wrap-around: full trace repetitions contribute
        ``kilobits_between(0, duration)`` each.
        """
        if t1 < t0:
            raise ValueError(f"t1 ({t1}) must be >= t0 ({t0})")
        if t0 < 0:
            raise ValueError("times must be >= 0")
        span = t1 - t0
        start = self._wrap(t0)
        total = 0.0
        # Leading partial pass.
        lead = min(span, self._duration - start)
        total += self._kilobits_one_pass(start, start + lead)
        span -= lead
        if span <= _EPS:
            return total
        # Whole repetitions.
        per_pass = self._kilobits_one_pass(0.0, self._duration)
        full, rem = divmod(span, self._duration)
        total += per_pass * full
        if rem > _EPS:
            total += self._kilobits_one_pass(0.0, rem)
        return total

    def time_to_download(self, t0: float, size_kilobits: float) -> float:
        """Seconds needed from ``t0`` to deliver ``size_kilobits``.

        This is the exact inverse of :meth:`kilobits_between` and implements
        the download-time term ``d_k(R_k) / C_k`` of Eq. (1) without ever
        materialising the average ``C_k``: the integral is inverted segment
        by segment.  Raises if the trace has zero total capacity (the
        download would never complete).
        """
        if size_kilobits < 0:
            raise ValueError("size must be >= 0")
        if size_kilobits == 0:
            return 0.0
        per_pass = self._kilobits_one_pass(0.0, self._duration)
        if per_pass <= 0:
            raise ValueError("trace delivers zero bytes per pass; download never completes")
        remaining = size_kilobits
        elapsed = 0.0
        t = self._wrap(t0)
        idx = bisect.bisect_right(self._times, t) - 1
        # Leading partial pass.
        while idx < len(self._times):
            seg_end = self._times[idx + 1] if idx + 1 < len(self._times) else self._duration
            seg_len = seg_end - t
            seg_bits = self._bw[idx] * seg_len
            if seg_bits >= remaining - _EPS and self._bw[idx] > 0:
                return elapsed + remaining / self._bw[idx]
            remaining -= seg_bits
            elapsed += seg_len
            t = seg_end
            idx += 1
        # Whole repetitions from the top of the trace.
        if remaining > _EPS:
            full = math.floor(remaining / per_pass)
            remaining -= full * per_pass
            elapsed += full * self._duration
        t = 0.0
        idx = 0
        while remaining > _EPS:
            seg_end = self._times[idx + 1] if idx + 1 < len(self._times) else self._duration
            seg_len = seg_end - t
            seg_bits = self._bw[idx] * seg_len
            if seg_bits >= remaining - _EPS and self._bw[idx] > 0:
                return elapsed + remaining / self._bw[idx]
            remaining -= seg_bits
            elapsed += seg_len
            t = seg_end
            idx += 1
            if idx >= len(self._times):  # pragma: no cover - numeric safety
                t = 0.0
                idx = 0
        return elapsed

    def _stall_one_pass(self) -> float:
        """Zero-bandwidth seconds per full pass of the trace."""
        stall = 0.0
        for bw, dur in zip(self._bw, self.segment_durations()):
            if bw == 0.0:
                stall += dur
        return stall

    def download_time_and_stall(
        self, t0: float, size_kilobits: float
    ) -> Tuple[float, float]:
        """:meth:`time_to_download` plus the stalled seconds inside it.

        The returned download time is bit-identical to
        :meth:`time_to_download` — the walk below is the same code with a
        stall accumulator bolted on (the added sums never touch the time
        arithmetic).  "Stalled" means time spent inside zero-bandwidth
        segments (blackouts compiled in by
        :func:`repro.faults.trace.apply_trace_faults`); whole-repetition
        skips contribute ``full * stall_per_pass`` with the per-pass
        stall accumulated in segment order, which is also how the fleet
        stepper's vectorized twin computes it.
        """
        if size_kilobits < 0:
            raise ValueError("size must be >= 0")
        if size_kilobits == 0:
            return 0.0, 0.0
        per_pass = self._kilobits_one_pass(0.0, self._duration)
        if per_pass <= 0:
            raise ValueError("trace delivers zero bytes per pass; download never completes")
        remaining = size_kilobits
        elapsed = 0.0
        stall = 0.0
        t = self._wrap(t0)
        idx = bisect.bisect_right(self._times, t) - 1
        # Leading partial pass.
        while idx < len(self._times):
            seg_end = self._times[idx + 1] if idx + 1 < len(self._times) else self._duration
            seg_len = seg_end - t
            seg_bits = self._bw[idx] * seg_len
            if seg_bits >= remaining - _EPS and self._bw[idx] > 0:
                return elapsed + remaining / self._bw[idx], stall
            remaining -= seg_bits
            elapsed += seg_len
            if self._bw[idx] == 0.0:
                stall += seg_len
            t = seg_end
            idx += 1
        # Whole repetitions from the top of the trace.
        if remaining > _EPS:
            full = math.floor(remaining / per_pass)
            remaining -= full * per_pass
            elapsed += full * self._duration
            stall += full * self._stall_one_pass()
        t = 0.0
        idx = 0
        while remaining > _EPS:
            seg_end = self._times[idx + 1] if idx + 1 < len(self._times) else self._duration
            seg_len = seg_end - t
            seg_bits = self._bw[idx] * seg_len
            if seg_bits >= remaining - _EPS and self._bw[idx] > 0:
                return elapsed + remaining / self._bw[idx], stall
            remaining -= seg_bits
            elapsed += seg_len
            if self._bw[idx] == 0.0:
                stall += seg_len
            t = seg_end
            idx += 1
            if idx >= len(self._times):  # pragma: no cover - numeric safety
                t = 0.0
                idx = 0
        return elapsed, stall

    def average_kbps_between(self, t0: float, t1: float) -> float:
        """Average throughput over a window — ``C_k`` of Eq. (2)."""
        if t1 <= t0:
            raise ValueError("window must have positive length")
        return self.kilobits_between(t0, t1) / (t1 - t0)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def mean_kbps(self) -> float:
        """Time-weighted mean throughput over one pass of the trace."""
        return self._kilobits_one_pass(0.0, self._duration) / self._duration

    def std_kbps(self) -> float:
        """Time-weighted standard deviation of throughput."""
        mean = self.mean_kbps()
        var = 0.0
        for bw, dur in zip(self._bw, self.segment_durations()):
            var += dur * (bw - mean) ** 2
        return math.sqrt(var / self._duration)

    def stats(self) -> TraceStats:
        return TraceStats(
            mean_kbps=self.mean_kbps(),
            std_kbps=self.std_kbps(),
            min_kbps=min(self._bw),
            max_kbps=max(self._bw),
            duration_s=self._duration,
            num_segments=len(self),
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def scaled(self, factor: float, name: str = "") -> "Trace":
        """A copy with every throughput value multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Trace(
            self._times,
            [bw * factor for bw in self._bw],
            duration_s=self._duration,
            name=name or self.name,
        )

    def shifted(self, offset_kbps: float, floor_kbps: float = 0.0, name: str = "") -> "Trace":
        """A copy with ``offset_kbps`` added to every value, floored."""
        return Trace(
            self._times,
            [max(bw + offset_kbps, floor_kbps) for bw in self._bw],
            duration_s=self._duration,
            name=name or self.name,
        )

    def sliced(self, t0: float, t1: float, name: str = "") -> "Trace":
        """The sub-trace over ``[t0, t1]`` (no wrapping), re-based to 0."""
        if not (0 <= t0 < t1 <= self._duration + _EPS):
            raise ValueError(f"invalid slice [{t0}, {t1}] of a {self._duration}s trace")
        times: List[float] = []
        bws: List[float] = []
        idx = bisect.bisect_right(self._times, t0) - 1
        times.append(0.0)
        bws.append(self._bw[idx])
        for j in range(idx + 1, len(self._times)):
            if self._times[j] >= t1:
                break
            times.append(self._times[j] - t0)
            bws.append(self._bw[j])
        return Trace(times, bws, duration_s=t1 - t0, name=name or self.name)

    @staticmethod
    def concatenate(traces: Iterable["Trace"], name: str = "") -> "Trace":
        """Join traces back to back — how the paper extends FCC sets."""
        traces = list(traces)
        if not traces:
            raise ValueError("need at least one trace to concatenate")
        times: List[float] = []
        bws: List[float] = []
        offset = 0.0
        for tr in traces:
            for t, bw in zip(tr._times, tr._bw):
                times.append(t + offset)
                bws.append(bw)
            offset += tr._duration
        return Trace(times, bws, duration_s=offset, name=name)

    def repeated(self, copies: int, name: str = "") -> "Trace":
        """The trace concatenated with itself ``copies`` times."""
        if copies < 1:
            raise ValueError("copies must be >= 1")
        return Trace.concatenate([self] * copies, name=name or self.name)

    def resampled(self, interval_s: float, name: str = "") -> "Trace":
        """Average onto a regular grid of ``interval_s`` buckets."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        n = max(1, int(math.ceil(self._duration / interval_s - _EPS)))
        samples = []
        for i in range(n):
            a = i * interval_s
            b = min((i + 1) * interval_s, self._duration)
            samples.append(self.kilobits_between(a, b) / (b - a))
        return Trace.from_samples(samples, interval_s, name=name or self.name)

    def chunk_throughputs(self, chunk_duration_s: float, num_chunks: int) -> List[float]:
        """Average throughput over successive ``chunk_duration_s`` windows.

        This is the "oracle" view used by perfect-prediction experiments
        (MPC-OPT in Section 7): window ``j`` is
        ``[j*L, (j+1)*L)`` in wall time.
        """
        if chunk_duration_s <= 0:
            raise ValueError("chunk duration must be positive")
        return [
            self.average_kbps_between(j * chunk_duration_s, (j + 1) * chunk_duration_s)
            for j in range(num_chunks)
        ]
