"""Reading and writing traces to disk.

Two formats are supported:

* **CSV** — two columns ``time_s,bandwidth_kbps`` (header optional).  This
  mirrors the HSDPA dataset's published log format and is the package's
  native interchange format.

* **Mahimahi** — one packet-delivery timestamp (in milliseconds) per line,
  each granting one 1500-byte MTU of capacity.  This is the format used by
  the broader ABR research ecosystem that grew out of this paper
  (Pensieve, Puffer), so traces produced here can be consumed by those
  tools and vice versa.
"""

from __future__ import annotations

import csv
import math
import os
from pathlib import Path
from typing import Iterable, List, Union

from .trace import Trace

__all__ = [
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_mahimahi",
    "load_trace_mahimahi",
    "save_dataset",
    "load_dataset",
]

_MTU_BYTES = 1500
_MTU_KILOBITS = _MTU_BYTES * 8 / 1000.0

PathLike = Union[str, os.PathLike]


def save_trace_csv(trace: Trace, path: PathLike) -> None:
    """Write ``time_s,bandwidth_kbps`` rows plus a final duration marker."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "bandwidth_kbps"])
        for t, bw in zip(trace.timestamps, trace.bandwidths_kbps):
            writer.writerow([f"{t:.6f}", f"{bw:.6f}"])
        # Sentinel row marking total duration (bandwidth repeated).
        writer.writerow([f"{trace.duration_s:.6f}", f"{trace.bandwidths_kbps[-1]:.6f}"])


def load_trace_csv(path: PathLike, name: str = "") -> Trace:
    """Inverse of :func:`save_trace_csv`; tolerates a missing header."""
    path = Path(path)
    times: List[float] = []
    bws: List[float] = []
    with path.open(newline="") as fh:
        for row in csv.reader(fh):
            if not row or row[0].startswith("#"):
                continue
            try:
                t = float(row[0])
            except ValueError:
                continue  # header row
            times.append(t)
            bws.append(float(row[1]))
    if len(times) < 2:
        raise ValueError(f"{path}: need at least two rows (samples + duration sentinel)")
    duration = times[-1]
    return Trace(times[:-1], bws[:-1], duration_s=duration, name=name or path.stem)


def save_trace_mahimahi(trace: Trace, path: PathLike) -> None:
    """Write a mahimahi packet-delivery schedule equivalent to the trace.

    Each line is an integer millisecond at which one MTU may be sent.  We
    walk the trace in 1 ms steps accumulating fractional capacity; a packet
    opportunity is emitted whenever a full MTU has accrued.
    """
    path = Path(path)
    ms_total = int(math.ceil(trace.duration_s * 1000))
    with path.open("w") as fh:
        credit_kilobits = 0.0
        for ms in range(ms_total):
            credit_kilobits += trace.bandwidth_at(ms / 1000.0) / 1000.0
            while credit_kilobits >= _MTU_KILOBITS:
                fh.write(f"{ms + 1}\n")
                credit_kilobits -= _MTU_KILOBITS


def load_trace_mahimahi(
    path: PathLike,
    bucket_s: float = 1.0,
    name: str = "",
) -> Trace:
    """Convert a mahimahi schedule back to a piecewise-constant trace.

    Packet opportunities are aggregated into ``bucket_s`` buckets and each
    bucket becomes one throughput sample.
    """
    if bucket_s <= 0:
        raise ValueError("bucket must be positive")
    path = Path(path)
    counts: dict[int, int] = {}
    last_ms = 0
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            ms = int(line)
            last_ms = max(last_ms, ms)
            counts[int((ms - 1) / (bucket_s * 1000))] = (
                counts.get(int((ms - 1) / (bucket_s * 1000)), 0) + 1
            )
    if not counts:
        raise ValueError(f"{path}: empty mahimahi trace")
    n_buckets = max(int(math.ceil(last_ms / (bucket_s * 1000))), max(counts) + 1)
    samples = [
        counts.get(i, 0) * _MTU_KILOBITS / bucket_s for i in range(n_buckets)
    ]
    return Trace.from_samples(samples, bucket_s, name=name or path.stem)


def save_dataset(traces: Iterable[Trace], directory: PathLike) -> List[Path]:
    """Save each trace as ``<name>.csv`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, trace in enumerate(traces):
        stem = trace.name or f"trace-{i:04d}"
        p = directory / f"{stem}.csv"
        save_trace_csv(trace, p)
        paths.append(p)
    return paths


def load_dataset(directory: PathLike) -> List[Trace]:
    """Load every ``*.csv`` trace under ``directory`` (sorted by name)."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"{directory} is not a directory")
    return [load_trace_csv(p) for p in sorted(directory.glob("*.csv"))]
