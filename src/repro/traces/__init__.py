"""Throughput-trace substrate: trace model, dataset generators, I/O."""

from .trace import Trace, TraceStats
from .synthetic import MarkovState, SyntheticTraceGenerator, shared_bottleneck_states
from .fcc import FCCTraceGenerator
from .hsdpa import HSDPARegime, HSDPATraceGenerator
from .filters import (
    ensure_min_duration,
    filter_by_mean,
    filter_by_std,
    filter_nontrivial,
    take,
)
from .io import (
    load_dataset,
    load_trace_csv,
    load_trace_mahimahi,
    save_dataset,
    save_trace_csv,
    save_trace_mahimahi,
)
from .datasets import DATASET_NAMES, make_generator, standard_datasets
from .fitting import MarkovFit, fit_markov_model

__all__ = [
    "Trace",
    "TraceStats",
    "MarkovState",
    "SyntheticTraceGenerator",
    "shared_bottleneck_states",
    "FCCTraceGenerator",
    "HSDPARegime",
    "HSDPATraceGenerator",
    "ensure_min_duration",
    "filter_by_mean",
    "filter_by_std",
    "filter_nontrivial",
    "take",
    "load_dataset",
    "load_trace_csv",
    "load_trace_mahimahi",
    "save_dataset",
    "save_trace_csv",
    "save_trace_mahimahi",
    "DATASET_NAMES",
    "MarkovFit",
    "fit_markov_model",
    "make_generator",
    "standard_datasets",
]
