"""Convenience builders for the paper's three evaluation datasets.

Section 7.1.1 evaluates on 1000 traces each from the FCC broadband and
HSDPA mobile datasets plus a hidden-Markov synthetic dataset, with FCC
traces filtered to 0–3 Mbps mean throughput.  :func:`standard_datasets`
assembles seeded, size-configurable equivalents of all three (see DESIGN.md
for the substitution rationale).
"""

from __future__ import annotations

from typing import Dict, List

from .fcc import FCCTraceGenerator
from .filters import filter_by_mean
from .hsdpa import HSDPATraceGenerator
from .synthetic import SyntheticTraceGenerator
from .trace import Trace

__all__ = ["standard_datasets", "DATASET_NAMES", "make_generator"]

DATASET_NAMES = ("fcc", "hsdpa", "synthetic")


def make_generator(dataset: str, seed: int = 0):
    """Instantiate the generator for a named dataset."""
    if dataset == "fcc":
        return FCCTraceGenerator(seed=seed)
    if dataset == "hsdpa":
        return HSDPATraceGenerator(seed=seed)
    if dataset == "synthetic":
        return SyntheticTraceGenerator(seed=seed)
    raise ValueError(f"unknown dataset {dataset!r}; expected one of {DATASET_NAMES}")


def standard_datasets(
    traces_per_dataset: int = 100,
    duration_s: float = 320.0,
    seed: int = 0,
    mean_band_kbps: tuple = (0.0, 3000.0),
) -> Dict[str, List[Trace]]:
    """The paper's three datasets, scaled to ``traces_per_dataset``.

    FCC traces are filtered to the paper's mean-throughput band; to keep the
    requested count, the generator over-produces and the first
    ``traces_per_dataset`` qualifying traces are kept.
    """
    if traces_per_dataset <= 0:
        raise ValueError("traces_per_dataset must be positive")
    out: Dict[str, List[Trace]] = {}
    for dataset in DATASET_NAMES:
        gen = make_generator(dataset, seed=seed)
        traces: List[Trace] = []
        index = 0
        while len(traces) < traces_per_dataset:
            batch = gen.generate_many(
                traces_per_dataset, duration_s, start_index=index
            )
            index += len(batch)
            if dataset == "fcc":
                batch = filter_by_mean(batch, *mean_band_kbps)
            traces.extend(batch)
            if index > 50 * traces_per_dataset:  # pragma: no cover - safety valve
                raise RuntimeError(f"could not collect enough {dataset} traces")
        out[dataset] = traces[:traces_per_dataset]
    return out
