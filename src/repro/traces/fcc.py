"""FCC-broadband-like throughput trace generator.

The paper's broadband workload is the FCC "Measuring Broadband America"
dataset [9]: sets of six 5-second average-throughput measurements per
server/client pair, concatenated to cover the video length and filtered to
sessions with 0–3 Mbps mean throughput (Section 7.1.1).

We do not ship the proprietary measurement files; instead this module
generates statistically matched traces (see DESIGN.md, substitution table).
The published characteristics the generator is calibrated against
(Figure 7 of the paper) are:

* mean throughput spread over roughly 0.3–3 Mbps after the paper's
  0–3 Mbps filter,
* *low* temporal variability within a session — broadband links are stable,
  with a standard deviation typically well under 20% of the mean, and
* harmonic-mean prediction error under ~5% on average.

The model: each session draws a long-term mean from a lognormal
distribution; within the session throughput follows a slow AR(1) process
around that mean at 5-second granularity, with occasional mild congestion
dips (cross traffic).
"""

from __future__ import annotations

import math
import random
from typing import List

from .trace import Trace

__all__ = ["FCCTraceGenerator"]


class FCCTraceGenerator:
    """Seeded generator of FCC-like (stable broadband) traces."""

    dataset_name = "fcc"
    sample_interval_s = 5.0

    def __init__(
        self,
        seed: int = 0,
        mean_low_kbps: float = 300.0,
        mean_high_kbps: float = 3000.0,
        relative_std: float = 0.05,
        ar_coefficient: float = 0.7,
        dip_probability: float = 0.015,
        dip_depth: float = 0.35,
        floor_kbps: float = 50.0,
    ) -> None:
        if not (0 < mean_low_kbps < mean_high_kbps):
            raise ValueError("need 0 < mean_low < mean_high")
        if not (0 <= ar_coefficient < 1):
            raise ValueError("AR coefficient must be in [0, 1)")
        if not (0 <= dip_probability <= 1):
            raise ValueError("dip probability must be in [0, 1]")
        if not (0 < dip_depth <= 1):
            raise ValueError("dip depth must be in (0, 1]")
        self.seed = seed
        self.mean_low_kbps = mean_low_kbps
        self.mean_high_kbps = mean_high_kbps
        self.relative_std = relative_std
        self.ar_coefficient = ar_coefficient
        self.dip_probability = dip_probability
        self.dip_depth = dip_depth
        self.floor_kbps = floor_kbps

    def _session_mean(self, rng: random.Random) -> float:
        """Lognormal session mean, clipped to the paper's 0–3 Mbps filter."""
        lo, hi = math.log(self.mean_low_kbps), math.log(self.mean_high_kbps)
        mu = (lo + hi) / 2
        sigma = (hi - lo) / 4
        while True:
            mean = math.exp(rng.gauss(mu, sigma))
            if self.mean_low_kbps <= mean <= self.mean_high_kbps:
                return mean

    def generate(self, duration_s: float, index: int = 0) -> Trace:
        """Generate one FCC-like trace of at least ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = random.Random(f"{self.seed}-fcc-{index}")
        session_mean = self._session_mean(rng)
        sigma = self.relative_std * session_mean
        # Stationary AR(1): innovations scaled so marginal std equals sigma.
        innovation_std = sigma * math.sqrt(1 - self.ar_coefficient**2)
        n = int(math.ceil(duration_s / self.sample_interval_s))
        samples: List[float] = []
        deviation = rng.gauss(0.0, sigma)
        for _ in range(n):
            value = session_mean + deviation
            if rng.random() < self.dip_probability:
                value *= 1.0 - self.dip_depth * rng.random()
            samples.append(max(value, self.floor_kbps))
            deviation = self.ar_coefficient * deviation + rng.gauss(0.0, innovation_std)
        return Trace.from_samples(
            samples, self.sample_interval_s, name=f"{self.dataset_name}-{index:04d}"
        )

    def generate_many(self, count: int, duration_s: float, start_index: int = 0) -> List[Trace]:
        return [self.generate(duration_s, index=start_index + i) for i in range(count)]
