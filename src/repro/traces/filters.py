"""Trace selection and filtering utilities.

Section 7.1.1 of the paper filters the FCC dataset to traces "whose average
throughput is between 0 to 3 Mbps, to avoid trivial cases where picking the
maximum bitrate is always the optimal solution".  These helpers implement
that kind of selection over any collection of traces.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from .trace import Trace

__all__ = [
    "filter_by_mean",
    "filter_by_std",
    "filter_nontrivial",
    "ensure_min_duration",
    "take",
]


def filter_by_mean(
    traces: Iterable[Trace],
    min_kbps: float = 0.0,
    max_kbps: float = float("inf"),
) -> List[Trace]:
    """Keep traces whose time-weighted mean throughput is in the band."""
    if min_kbps > max_kbps:
        raise ValueError("min_kbps must not exceed max_kbps")
    return [t for t in traces if min_kbps <= t.mean_kbps() <= max_kbps]


def filter_by_std(
    traces: Iterable[Trace],
    min_kbps: float = 0.0,
    max_kbps: float = float("inf"),
) -> List[Trace]:
    """Keep traces by standard deviation (variability) band."""
    if min_kbps > max_kbps:
        raise ValueError("min_kbps must not exceed max_kbps")
    return [t for t in traces if min_kbps <= t.std_kbps() <= max_kbps]


def filter_nontrivial(
    traces: Iterable[Trace],
    max_bitrate_kbps: float,
    margin: float = 1.0,
) -> List[Trace]:
    """Drop traces where the max ladder bitrate is always affordable.

    A trace whose *minimum* throughput exceeds ``margin * max_bitrate_kbps``
    makes every algorithm pick the top rate — the paper's "trivial case".
    """
    if max_bitrate_kbps <= 0:
        raise ValueError("max bitrate must be positive")
    out = []
    for t in traces:
        if min(t.bandwidths_kbps) <= margin * max_bitrate_kbps:
            out.append(t)
    return out


def ensure_min_duration(traces: Iterable[Trace], min_duration_s: float) -> List[Trace]:
    """Extend short traces by repetition so each covers the video length."""
    if min_duration_s <= 0:
        raise ValueError("duration must be positive")
    out = []
    for t in traces:
        if t.duration_s >= min_duration_s:
            out.append(t)
        else:
            copies = int(min_duration_s // t.duration_s) + 1
            out.append(t.repeated(copies))
    return out


def take(
    traces: Iterable[Trace],
    count: int,
    predicate: Optional[Callable[[Trace], bool]] = None,
) -> List[Trace]:
    """First ``count`` traces satisfying ``predicate`` (all, by default)."""
    if count < 0:
        raise ValueError("count must be >= 0")
    out: List[Trace] = []
    for t in traces:
        if predicate is None or predicate(t):
            out.append(t)
            if len(out) == count:
                break
    return out
