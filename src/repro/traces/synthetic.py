"""Synthetic throughput dataset from a hidden Markov model.

Section 7.1.1 of the paper: *"The throughput is based on some hidden state
``S_t`` in ``S`` modeling the number of users sharing a bottleneck link.
The actual throughput ``C_t`` follows a Gaussian distribution with mean
``m_s`` and variance ``sigma_s^2`` given the value of hidden state
``S_t = s``.  We vary both the state transition probability matrix as well
as the parameters ``m_s``, ``sigma_s^2`` to generate traces."*

This module implements exactly that generator.  The default configuration
models a bottleneck of fixed capacity shared by 1..`max_users` users, so
state ``s`` has mean throughput ``capacity / s``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .trace import Trace

__all__ = ["MarkovState", "SyntheticTraceGenerator", "shared_bottleneck_states"]


@dataclass(frozen=True)
class MarkovState:
    """One hidden state: Gaussian throughput with mean/std, in kbps."""

    mean_kbps: float
    std_kbps: float

    def sample(self, rng: random.Random, floor_kbps: float) -> float:
        return max(rng.gauss(self.mean_kbps, self.std_kbps), floor_kbps)


def shared_bottleneck_states(
    capacity_kbps: float = 4800.0,
    max_users: int = 6,
    relative_std: float = 0.15,
) -> List[MarkovState]:
    """States for ``s`` users sharing a ``capacity_kbps`` bottleneck.

    State ``s`` (1-indexed) yields mean ``capacity / s`` — the paper's
    "number of users sharing a bottleneck link" interpretation.
    """
    if max_users < 1:
        raise ValueError("max_users must be >= 1")
    states = []
    for s in range(1, max_users + 1):
        mean = capacity_kbps / s
        states.append(MarkovState(mean_kbps=mean, std_kbps=relative_std * mean))
    return states


def _default_transition_matrix(n: int, stay_probability: float) -> List[List[float]]:
    """Birth–death chain: users arrive/depart one at a time."""
    matrix = [[0.0] * n for _ in range(n)]
    for i in range(n):
        neighbours = [j for j in (i - 1, i + 1) if 0 <= j < n]
        move = (1.0 - stay_probability) / len(neighbours)
        matrix[i][i] = stay_probability
        for j in neighbours:
            matrix[i][j] = move
    return matrix


class SyntheticTraceGenerator:
    """Seeded generator for the paper's synthetic dataset.

    Parameters
    ----------
    states:
        The hidden Markov states.  Defaults to a shared-bottleneck model.
    transition_matrix:
        Row-stochastic matrix ``P[i][j] = Pr(next=j | current=i)``.
        Defaults to a sticky birth–death chain.
    sample_interval_s:
        The dwell time of each throughput sample (state transitions are
        evaluated once per interval).
    floor_kbps:
        Throughput samples are clipped from below at this value so that a
        Gaussian tail cannot produce a dead link.
    seed:
        Seed for reproducibility; every generated trace derives its own
        stream from it.
    """

    dataset_name = "synthetic"

    def __init__(
        self,
        states: Optional[Sequence[MarkovState]] = None,
        transition_matrix: Optional[Sequence[Sequence[float]]] = None,
        sample_interval_s: float = 2.0,
        floor_kbps: float = 50.0,
        stay_probability: float = 0.8,
        seed: int = 0,
    ) -> None:
        self.states = list(states) if states is not None else shared_bottleneck_states()
        if not self.states:
            raise ValueError("need at least one Markov state")
        n = len(self.states)
        if transition_matrix is None:
            transition_matrix = _default_transition_matrix(n, stay_probability)
        self.transition_matrix = [list(map(float, row)) for row in transition_matrix]
        if len(self.transition_matrix) != n or any(
            len(row) != n for row in self.transition_matrix
        ):
            raise ValueError("transition matrix shape must match number of states")
        for row in self.transition_matrix:
            if any(p < 0 for p in row) or abs(sum(row) - 1.0) > 1e-9:
                raise ValueError("transition matrix rows must be distributions")
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval_s = float(sample_interval_s)
        self.floor_kbps = float(floor_kbps)
        self.seed = seed

    def _next_state(self, rng: random.Random, current: int) -> int:
        u = rng.random()
        acc = 0.0
        row = self.transition_matrix[current]
        for j, p in enumerate(row):
            acc += p
            if u <= acc:
                return j
        return len(row) - 1

    def generate(self, duration_s: float, index: int = 0) -> Trace:
        """Generate one trace of at least ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = random.Random(f"{self.seed}-synthetic-{index}")
        state = rng.randrange(len(self.states))
        samples: List[float] = []
        t = 0.0
        while t < duration_s:
            samples.append(self.states[state].sample(rng, self.floor_kbps))
            state = self._next_state(rng, state)
            t += self.sample_interval_s
        return Trace.from_samples(
            samples,
            self.sample_interval_s,
            name=f"{self.dataset_name}-{index:04d}",
        )

    def generate_many(self, count: int, duration_s: float, start_index: int = 0) -> List[Trace]:
        """Generate ``count`` independent traces."""
        return [self.generate(duration_s, index=start_index + i) for i in range(count)]
