#!/usr/bin/env python3
"""FastMPC deployment walk-through: enumerate offline, ship a table.

Follows Section 5 end to end:

1. enumerate the binned state space offline and solve every instance,
2. run-length-encode the decision vector and measure the footprint
   (the paper's Table 1),
3. serialise/deserialise the table — the artifact a player would download,
4. drive a playback session from pure table lookups and compare against
   the online solver, timing both.

Usage::

    python examples/fastmpc_table_deployment.py [buffer_bins] [tput_bins]
"""

from __future__ import annotations

import sys
import time

from repro import envivio, simulate_session
from repro.abr import SessionConfig
from repro.core import (
    FastMPCConfig,
    FastMPCController,
    MPCController,
    QoEWeights,
    build_decision_table,
)
from repro.core.table import RunLengthEncodedTable
from repro.experiments import measure_overhead
from repro.traces import FCCTraceGenerator


def main() -> int:
    buffer_bins = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    throughput_bins = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    manifest = envivio()
    weights = QoEWeights.balanced()
    config = FastMPCConfig(buffer_bins=buffer_bins, throughput_bins=throughput_bins)

    # 1. Offline enumeration (the CPLEX farm of Figure 5, in one process).
    print(
        f"enumerating {buffer_bins} x {len(manifest.ladder)} x "
        f"{throughput_bins} scenarios offline..."
    )
    t0 = time.perf_counter()
    table = build_decision_table(
        manifest.ladder.levels_kbps,
        manifest.chunk_duration_s,
        30.0,
        weights,
        config=config,
    )
    build_s = time.perf_counter() - t0
    print(f"  solved {table.num_entries:,} instances in {build_s:.1f} s")

    # 2. Compression accounting (Table 1).
    report = table.size_report(buffer_bins)
    print(f"  full table  : {report.full_bytes / 1000:8.1f} kB")
    print(f"  RLE         : {report.rle_bytes / 1000:8.1f} kB "
          f"({table.rle.num_runs:,} runs, ratio {report.compression_ratio:.2f})")

    # 3. The shippable artifact.
    blob = table.rle.to_bytes()
    restored = RunLengthEncodedTable.from_bytes(blob)
    assert list(restored.decode()) == list(table.rle.decode())
    print(f"  serialised  : {len(blob) / 1000:8.1f} kB, round-trips exactly")

    # 4. Online: table lookups vs the online solver on a real session.
    # (The controller fetches the already-built table from the module
    # cache, so what we time below is pure decision cost.)
    trace = FCCTraceGenerator(seed=3).generate(manifest.total_duration_s + 60.0)
    session_config = SessionConfig(weights=weights)

    fast = FastMPCController(config=config)
    fast_session = simulate_session(fast, trace, manifest, session_config)
    online = MPCController()
    online_session = simulate_session(online, trace, manifest, session_config)

    samples = {
        s.algorithm: s
        for s in measure_overhead(
            {"fastmpc": FastMPCController(config=config), "mpc": MPCController()},
            trace,
            manifest,
            session_config,
        )
    }
    print("\nsession comparison (same trace):")
    print(f"  {'fastmpc (table)':>18}: QoE {fast_session.qoe().total:>10,.0f}"
          f"  per-decision {samples['fastmpc'].mean_decision_us:8.1f} us")
    print(f"  {'mpc (online)':>18}: QoE {online_session.qoe().total:>10,.0f}"
          f"  per-decision {samples['mpc'].mean_decision_us:8.1f} us")
    ratio = fast_session.qoe().total / online_session.qoe().total
    speedup = samples["mpc"].mean_decision_us / samples["fastmpc"].mean_decision_us
    print(f"\ntable achieves {ratio:.1%} of the online solver's QoE at "
          f"~{speedup:.0f}x lower per-decision cost — and with no solver "
          "shipped in the player.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
