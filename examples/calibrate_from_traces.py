#!/usr/bin/env python3
"""Calibrate the synthetic generator from measured traces.

The paper's synthetic dataset is a hidden-Markov model whose parameters
(states, emission Gaussians, transition matrix) the authors tuned by
hand.  If you hold *real* throughput logs — the FCC or HSDPA datasets,
or your own CDN measurements — you can instead fit those parameters
directly and generate unlimited statistically matched traces.

This example plays the full workflow:

1. write a "measured" dataset to disk as CSV (here: HSDPA-like traces,
   standing in for your real logs),
2. load it back and fit the hidden-Markov model,
3. generate fresh traces from the fit,
4. verify that an ABR comparison gives the same answer on fitted traces
   as on the originals.

Usage::

    python examples/calibrate_from_traces.py [num_traces]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import create, envivio
from repro.experiments import render_table, run_matrix
from repro.traces import (
    HSDPATraceGenerator,
    fit_markov_model,
    load_dataset,
    save_dataset,
)


def main() -> int:
    num_traces = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    manifest = envivio()

    # 1. "Measured" logs on disk (swap this directory for your own data).
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))
    measured = HSDPATraceGenerator(seed=8).generate_many(num_traces, 320.0)
    save_dataset(measured, workdir)
    print(f"wrote {num_traces} measured traces to {workdir}")

    # 2. Load and fit.
    loaded = load_dataset(workdir)
    fit = fit_markov_model(loaded, num_states=6)
    print(f"\nfitted {len(fit.states)} states from {fit.num_samples} samples:")
    for i, state in enumerate(fit.states):
        self_p = fit.transition_matrix[i][i]
        print(
            f"  state {i}: mean {state.mean_kbps:7.0f} kbps"
            f"  std {state.std_kbps:6.0f}  self-transition {self_p:.2f}"
        )
    print(f"stationary mean: {fit.mean_kbps():.0f} kbps")

    # 3. Generate fresh traces from the fit.
    fitted_traces = fit.to_generator(seed=99).generate_many(num_traces, 320.0)

    # 4. Same experiment on both pools: does the comparison transfer?
    def comparison(traces):
        algorithms = {"robust-mpc": create("robust-mpc"), "bb": create("bb")}
        return run_matrix(algorithms, traces, manifest)

    original = comparison(loaded)
    fitted = comparison(fitted_traces)
    rows = []
    for name in ("robust-mpc", "bb"):
        rows.append(
            [
                name,
                round(original.median_n_qoe(name), 3),
                round(fitted.median_n_qoe(name), 3),
            ]
        )
    print()
    print(render_table(["algorithm", "measured traces", "fitted traces"], rows))
    same_winner = (
        original.median_n_qoe("robust-mpc") > original.median_n_qoe("bb")
    ) == (fitted.median_n_qoe("robust-mpc") > fitted.median_n_qoe("bb"))
    print(
        f"\nsame winner on both pools: {same_winner} — the fitted generator "
        "preserves the comparison."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
