#!/usr/bin/env python3
"""Multi-player bottleneck sharing — the Section 8 extension.

The paper's discussion singles out multi-player interaction as future
work.  The byte-level emulation testbed makes it runnable today: several
players with (possibly different) adaptation algorithms compete on one
trace-shaped bottleneck with max-min fair sharing, slow-start ramps, and
request RTTs — the environment FESTIVE was designed for.

The example reports per-player quality plus the shared-link fairness
measures (Jain's index and the multiplayer paper's unfairness score)
that ``emulate_shared_link`` now attaches to its result.

Usage::

    python examples/multi_player_fairness.py [num_players] [algo1,algo2,...]
"""

from __future__ import annotations

import sys

from repro import envivio
from repro.abr import create
from repro.emulation import NetworkProfile, emulate_shared_link
from repro.experiments import render_table
from repro.traces import Trace


def main() -> int:
    num_players = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    names = (
        sys.argv[2].split(",")
        if len(sys.argv) > 2
        else ["festive", "robust-mpc", "rb"][:num_players]
    )
    while len(names) < num_players:
        names.append(names[-1])

    manifest = envivio()
    # A bottleneck sized so that the players genuinely compete: about
    # 1.2 Mbps per player on average, with a mid-session dip.
    per_player = 1200.0
    trace = Trace(
        [0.0, 120.0, 180.0],
        [per_player * num_players, 0.5 * per_player * num_players,
         per_player * num_players],
        duration_s=3 * manifest.total_duration_s,
        name="shared-bottleneck",
    )
    print(
        f"{num_players} players ({', '.join(names)}) sharing "
        f"{trace.bandwidths_kbps[0]:.0f} kbps with a mid-session dip\n"
    )

    results = emulate_shared_link(
        [create(name) for name in names],
        trace,
        manifest,
        network=NetworkProfile(rtt_s=0.08, slow_start=True),
        start_stagger_s=3.0,
    )

    rows = []
    for name, session in zip(names, results):
        metrics = session.metrics()
        rows.append(
            [
                name,
                round(metrics.average_bitrate_kbps, 0),
                round(metrics.average_bitrate_change_kbps, 1),
                round(metrics.total_rebuffer_s, 2),
                round(session.qoe().total, 0),
            ]
        )
    print(
        render_table(
            ["player", "avg kbps", "switch kbps/chunk", "stall s", "QoE"],
            rows,
        )
    )
    print(f"\n{results.fairness().describe()}")
    print(
        "(FESTIVE trades some efficiency for stability by design — "
        "footnote 8 of the paper.)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
