#!/usr/bin/env python3
"""Emulation vs simulation: how much does byte-level realism matter?

The paper evaluates on both a testbed (Section 7.2) and a chunk-level
simulator (Section 7.3).  This example runs identical algorithm/trace
pairs through our two backends and quantifies the gap that HTTP realism
(request RTTs, header overhead, TCP slow-start restarts) introduces —
including the throughput-measurement bias that motivates robust
prediction handling.

Usage::

    python examples/emulation_vs_simulation.py [num_traces]
"""

from __future__ import annotations

import sys

from repro import create, envivio
from repro.emulation import NetworkProfile
from repro.experiments import median, render_table, run_matrix
from repro.traces import HSDPATraceGenerator


def main() -> int:
    num_traces = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    manifest = envivio()
    traces = HSDPATraceGenerator(seed=99).generate_many(
        num_traces, manifest.total_duration_s + 60.0
    )
    algorithms = lambda: {  # fresh instances per backend
        "robust-mpc": create("robust-mpc"),
        "bb": create("bb"),
        "dashjs": create("dashjs"),
    }

    sim = run_matrix(algorithms(), traces, manifest, backend="sim")
    emu = run_matrix(
        algorithms(), traces, manifest, backend="emulation",
        network=NetworkProfile(rtt_s=0.08, header_kilobits=4.0, slow_start=True),
    )

    rows = []
    for name in ("robust-mpc", "bb", "dashjs"):
        sim_tput = median(sim.metric_values(name, "average_throughput_kbps"))
        emu_tput = median(emu.metric_values(name, "average_throughput_kbps"))
        rows.append(
            [
                name,
                round(sim.median_n_qoe(name), 3),
                round(emu.median_n_qoe(name), 3),
                round(sim_tput, 0),
                round(emu_tput, 0),
                f"{(1 - emu_tput / sim_tput):.0%}",
            ]
        )
    print(
        render_table(
            [
                "algorithm",
                "sim n-QoE",
                "emu n-QoE",
                "sim meas. kbps",
                "emu meas. kbps",
                "HTTP bias",
            ],
            rows,
        )
    )
    print(
        "\nThe emulator's measured throughput sits below the simulator's —"
        "\nthe application-layer bias [Huang et al., IMC'12] that the paper"
        "\ncites as a core difficulty for rate-based algorithms.  Orderings"
        "\nbetween algorithms survive the added realism."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
