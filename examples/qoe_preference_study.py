#!/usr/bin/env python3
"""QoE preference study: one objective knob, three kinds of user.

The QoE model of Eq. 5 is parameterised, not fixed: lambda weights
smoothness, mu weights stalls, mu_s weights startup.  This example scores
the *same* player sessions under the paper's three preference profiles —
and then lets MPC re-optimise for each profile, showing the practical
benefit of an algorithm that optimises the declared objective directly
(Figure 11b's point).

Usage::

    python examples/qoe_preference_study.py [num_traces]
"""

from __future__ import annotations

import sys

from repro import QoEWeights, create, envivio, simulate_session
from repro.abr import SessionConfig
from repro.experiments import render_table
from repro.traces import SyntheticTraceGenerator

PRESETS = (
    QoEWeights.balanced(),
    QoEWeights.avoid_instability(),
    QoEWeights.avoid_rebuffering(),
)


def main() -> int:
    num_traces = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    manifest = envivio()
    traces = SyntheticTraceGenerator(seed=7).generate_many(
        num_traces, manifest.total_duration_s + 60.0
    )

    # Part 1: a buffer-based player is oblivious to the user's preference —
    # its sessions are whatever they are, only the score changes.
    print("1. The same BB sessions scored under each preference:\n")
    bb_sessions = [
        simulate_session(create("bb"), trace, manifest) for trace in traces
    ]
    rows = []
    for weights in PRESETS:
        totals = [s.qoe(weights=weights).total for s in bb_sessions]
        rows.append([weights.label, round(sum(totals) / len(totals), 0)])
    print(render_table(["preference", "BB mean QoE"], rows))

    # Part 2: MPC re-plans for each preference, because the weights enter
    # its optimisation directly.
    print("\n2. RobustMPC re-optimised per preference vs BB:\n")
    rows = []
    for weights in PRESETS:
        config = SessionConfig(weights=weights)
        mpc_total = 0.0
        bb_total = 0.0
        switches_mpc = 0.0
        for trace in traces:
            mpc = simulate_session(create("robust-mpc"), trace, manifest, config)
            bb = simulate_session(create("bb"), trace, manifest, config)
            mpc_total += mpc.qoe().total
            bb_total += bb.qoe().total
            switches_mpc += mpc.metrics().average_bitrate_change_kbps
        rows.append(
            [
                weights.label,
                round(mpc_total / num_traces, 0),
                round(bb_total / num_traces, 0),
                round(switches_mpc / num_traces, 1),
            ]
        )
    print(
        render_table(
            ["preference", "RobustMPC QoE", "BB QoE", "MPC kbps/chunk switch"],
            rows,
        )
    )
    print(
        "\nNote how MPC's switching magnitude falls under 'avoid-instability'"
        "\n— the controller spends its freedom where the user says it matters."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
