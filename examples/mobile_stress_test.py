#!/usr/bin/env python3
"""Mobile stress test: why RobustMPC exists.

Recreates the paper's central HSDPA finding at example scale: on highly
variable cellular traces, plain (Fast)MPC trusts its throughput
predictions, over-commits, and stalls; RobustMPC feeds the same solver
the recent-error lower bound (Theorem 1) and keeps the stalls away at a
small bitrate cost.

Usage::

    python examples/mobile_stress_test.py [num_traces]
"""

from __future__ import annotations

import sys

from repro import envivio
from repro.abr import BufferBasedAlgorithm
from repro.core import FastMPCController, RobustMPCController
from repro.experiments import fraction_at_most, median, render_table, run_matrix
from repro.traces import HSDPATraceGenerator


def main() -> int:
    num_traces = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    manifest = envivio()
    traces = HSDPATraceGenerator(seed=42).generate_many(
        num_traces, manifest.total_duration_s + 60.0
    )
    print(f"running 3 algorithms over {num_traces} HSDPA-like traces...\n")

    algorithms = {
        "fastmpc": FastMPCController(),
        "robust-mpc": RobustMPCController(),
        "bb": BufferBasedAlgorithm(),
    }
    results = run_matrix(algorithms, traces, manifest, dataset="hsdpa")

    rows = []
    for name in algorithms:
        rebuffers = results.metric_values(name, "total_rebuffer_s")
        bitrates = results.metric_values(name, "average_bitrate_kbps")
        rows.append(
            [
                name,
                round(results.median_n_qoe(name), 3),
                round(median(bitrates), 0),
                round(median(rebuffers), 2),
                f"{fraction_at_most(rebuffers, 1e-9):.0%}",
            ]
        )
    print(
        render_table(
            ["algorithm", "median n-QoE", "median kbps", "median stall s",
             "stall-free"],
            rows,
        )
    )

    gain = results.median_improvement("robust-mpc", "fastmpc")
    print(
        f"\nRobustMPC beats plain FastMPC by {gain:.0%} in median n-QoE "
        "on this mobile workload —\nthe paper's Section 7.2 story: "
        "prediction error, not the controller, is the enemy."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
