#!/usr/bin/env python3
"""Quickstart: stream one video over one throughput trace.

Runs the paper's headline algorithm (RobustMPC) and the two classic
baselines (rate-based, buffer-based) over a single generated mobile trace
and prints what each one did, chunk by chunk and in aggregate.

Usage::

    python examples/quickstart.py [dataset] [trace_index]

where ``dataset`` is ``fcc`` / ``hsdpa`` / ``synthetic`` (default hsdpa).
"""

from __future__ import annotations

import sys

from repro import create, envivio, simulate_session
from repro.core.offline import fluid_upper_bound, normalized_qoe
from repro.traces import make_generator


def main() -> int:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "hsdpa"
    trace_index = int(sys.argv[2]) if len(sys.argv) > 2 else 0

    manifest = envivio()  # the paper's 65 x 4 s, 5-level test video
    generator = make_generator(dataset, seed=0)
    trace = generator.generate(manifest.total_duration_s + 60.0, index=trace_index)
    print(f"trace: {trace!r}")
    print(f"video: {manifest!r}\n")

    optimal = fluid_upper_bound(trace, manifest)
    print(f"offline-optimal QoE bound: {optimal:,.0f}\n")

    for name in ("robust-mpc", "rb", "bb"):
        session = simulate_session(create(name), trace, manifest)
        breakdown = session.qoe()
        print(session.metrics().describe())
        print(
            f"{'':>16} QoE {breakdown.total:>10,.0f}"
            f"  (n-QoE {normalized_qoe(breakdown.total, optimal):.3f})"
        )
        # Show the first few decisions to make the behaviour tangible.
        levels = session.level_indices[:12]
        rates = [int(manifest.ladder[l]) for l in levels]
        print(f"{'':>16} first chunks (kbps): {rates}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
